#include "core/no_stealing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lsm::core {

namespace {
std::size_t pick_truncation(double lambda, std::size_t requested) {
  if (requested != 0) return requested;
  // Without stealing the tail ratio is lambda itself, slower than any
  // stealing variant; size L directly from it.
  if (lambda <= 0.0) return 48;
  const double needed = std::log(1e-13) / std::log(lambda);
  return static_cast<std::size_t>(std::clamp(needed + 8.0, 48.0, 2048.0));
}
}  // namespace

NoStealing::NoStealing(double lambda, std::size_t truncation)
    : MeanFieldModel(lambda, pick_truncation(lambda, truncation)) {
  trunc_explicit_ = truncation != 0;
  LSM_EXPECT(lambda < 1.0, "no-stealing model is unstable for lambda >= 1");
}

void NoStealing::deriv(double /*t*/, const ode::State& s,
                       ode::State& ds) const {
  const std::size_t L = trunc_;
  LSM_ASSERT(s.size() == L + 1 && ds.size() == L + 1);
  ds[0] = 0.0;
  for (std::size_t i = 1; i <= L; ++i) {
    const double s_next = (i < L) ? s[i + 1] : 0.0;
    ds[i] = lambda_ * (s[i - 1] - s[i]) - (s[i] - s_next);
  }
}

bool NoStealing::rhs_batch(std::size_t nb, const double* lambdas,
                           const double* x, double* dx) const {
  const std::size_t L = trunc_;
  // Component-major lanes, bit-identical per lane to deriv().
  for (std::size_t l = 0; l < nb; ++l) dx[l] = 0.0;
  for (std::size_t i = 1; i < L; ++i) {
    const double* sp = x + (i - 1) * nb;
    const double* si = x + i * nb;
    const double* sn = x + (i + 1) * nb;
    double* out = dx + i * nb;
    for (std::size_t l = 0; l < nb; ++l) {
      const double lam = lambdas != nullptr ? lambdas[l] : lambda_;
      out[l] = lam * (sp[l] - si[l]) - (si[l] - sn[l]);
    }
  }
  {
    const double* sp = x + (L - 1) * nb;
    const double* si = x + L * nb;
    double* out = dx + L * nb;
    for (std::size_t l = 0; l < nb; ++l) {
      const double lam = lambdas != nullptr ? lambdas[l] : lambda_;
      out[l] = lam * (sp[l] - si[l]) - (si[l] - 0.0);
    }
  }
  return true;
}

ode::State NoStealing::analytic_fixed_point() const { return mm1_state(); }

double NoStealing::analytic_sojourn() const { return 1.0 / (1.0 - lambda_); }

}  // namespace lsm::core
