// Transfer latency through Erlang stages (paper, Section 3.2 final remark:
// the transfer time "can also be modeled as a fixed constant, or some
// other distribution, using the technique of Section 3.1").
//
// A transfer consists of c stages, each exponential with rate c*r, so the
// total has mean 1/r and variance 1/(c r^2) -> a constant transfer time
// as c grows. State: the non-waiting tail vector s_i plus one waiting
// tail vector w^{(m)}_i per remaining-stage count m = 1..c.
//
//   steal start   : s -> w^{(c)} at rate (s_1 - s_2)(s_T + sum_m w^{(m)}_T)
//   stage progress: w^{(m)} -> w^{(m-1)} at rate c r   (m >= 2)
//   delivery      : w^{(1)} -> s gaining one task at rate c r
//
// c = 1 reduces exactly to TransferTimeWS.
#pragma once

#include "core/model.hpp"

namespace lsm::core {

class StagedTransferWS final : public MeanFieldModel {
 public:
  /// transfer_rate = r (mean transfer 1/r), `stages` = c >= 1,
  /// threshold T >= 2. truncation = 0 picks an automatic per-vector L.
  StagedTransferWS(double lambda, double transfer_rate, std::size_t stages,
                   std::size_t threshold, std::size_t truncation = 0);

  /// Packed state: [s | w^(1) | ... | w^(c)], each of length L + 1.
  [[nodiscard]] std::size_t dimension() const override {
    return (stages_ + 1) * (trunc_ + 1);
  }

  void deriv(double t, const ode::State& s, ode::State& ds) const override;
  [[nodiscard]] std::string name() const override;
  void project(ode::State& s) const override;
  void root_residual(const ode::State& s, ode::State& f) const override;

  [[nodiscard]] double transfer_rate() const noexcept { return rate_; }
  [[nodiscard]] std::size_t stages() const noexcept { return stages_; }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  [[nodiscard]] std::size_t tail_segments() const override {
    return stages_ + 1;
  }

  [[nodiscard]] std::size_t min_truncation() const override {
    return threshold_ + 3;
  }

  /// E[N]: queued tasks in all classes plus one in-transit task per
  /// waiting processor.
  [[nodiscard]] double mean_tasks(const ode::State& s) const override;

  /// Index of w^{(m)}_i in the packed state (m in 1..c).
  [[nodiscard]] std::size_t w_index(std::size_t m, std::size_t i) const {
    return m * (trunc_ + 1) + i;
  }

 private:
  double rate_;
  std::size_t stages_;
  std::size_t threshold_;
};

}  // namespace lsm::core
