// Preemptive stealing (paper, Section 2.4).
//
// A processor starts attempting steals before it is empty: whenever a
// service completion leaves it with j <= B tasks it probes one random
// victim and steals a task iff the victim has at least j + T tasks.
// Mean-field family (general B >= 0, T >= 2; the paper's displayed
// equations are the B + 2 <= T - 1 case of this form):
//
//   ds_i/dt = l(s_{i-1} - s_i)
//             - (s_i - s_{i+1}) (1 - [i-1 <= B] s_{i+T-1})
//             - [i >= T] (s_i - s_{i+1}) (s_1 - s_{min(B+2, i-T+2)})
//
// For i > B + T the tails decrease geometrically at ratio
// l / (1 + l - pi_{B+2}) (the apparent service rate intuition of 2.2).
#pragma once

#include "core/model.hpp"

namespace lsm::core {

class PreemptiveWS final : public MeanFieldModel {
 public:
  /// begin_steal = B (0 reduces to ThresholdWS); threshold = T >= 2.
  PreemptiveWS(double lambda, std::size_t begin_steal, std::size_t threshold,
               std::size_t truncation = 0);

  void deriv(double t, const ode::State& s, ode::State& ds) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t begin_steal() const noexcept { return begin_; }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  [[nodiscard]] std::size_t min_truncation() const override {
    return begin_ + threshold_ + 3;
  }

  /// Tail ratio predicted by Section 2.4, evaluated on a fixed point:
  /// l / (1 + l - pi_{B+2}).
  [[nodiscard]] double predicted_tail_ratio(const ode::State& pi) const;

 private:
  std::size_t begin_;
  std::size_t threshold_;
};

}  // namespace lsm::core
