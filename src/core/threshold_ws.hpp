// Threshold work stealing (paper, Section 2.3; the simplest WS model of
// Section 2.2 is the special case T = 2).
//
// A processor that completes its final task probes one uniformly random
// victim and steals the tail task iff the victim holds at least T tasks.
// Mean-field equations (4)-(6):
//
//   ds_1/dt = l(s_0 - s_1) - (s_1 - s_2)(1 - s_T)
//   ds_i/dt = l(s_{i-1} - s_i) - (s_i - s_{i+1})                2 <= i < T
//   ds_i/dt = l(s_{i-1} - s_i) - (s_i - s_{i+1})(1 + s_1 - s_2)     i >= T
//
// Closed-form fixed point (Section 2.3):
//   pi_T = ((1+l) - sqrt((1+l)^2 - 4 l^T)) / 2
//   pi_i = A + B l^i for 1 <= i <= T with B = 1/(1-pi_T), A = -l pi_T/(1-pi_T)
//   pi_i = pi_T * rho^{i-T} for i >= T with rho = l / (1 + l - pi_2).
#pragma once

#include "core/model.hpp"

namespace lsm::core {

class ThresholdWS : public MeanFieldModel {
 public:
  /// `threshold` T >= 2; truncation = 0 picks an automatic L.
  ThresholdWS(double lambda, std::size_t threshold, std::size_t truncation = 0);

  void deriv(double t, const ode::State& s, ode::State& ds) const override;
  [[nodiscard]] bool rhs_batch(std::size_t nb, const double* lambdas,
                               const double* x, double* dx) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  [[nodiscard]] std::size_t min_truncation() const override {
    return threshold_ + 3;
  }

  /// pi_T from the quadratic ((1+l) - sqrt((1+l)^2 - 4 l^T)) / 2.
  [[nodiscard]] double analytic_pi_threshold() const;
  /// pi_2 = l (l - pi_T) / (1 - pi_T).
  [[nodiscard]] double analytic_pi2() const;
  /// Geometric tail ratio beyond T: l / (1 + l - pi_2).
  [[nodiscard]] double analytic_tail_ratio() const;
  /// Full closed-form fixed point, truncated to this model's dimension.
  [[nodiscard]] ode::State analytic_fixed_point() const;
  /// Closed-form E[T] via Little's law on the analytic fixed point.
  [[nodiscard]] double analytic_sojourn() const;

 private:
  std::size_t threshold_;
};

/// The paper's initial "simple WS" model (Section 2.2): ThresholdWS with
/// T = 2, i.e. steal whenever the victim has a spare task.
class SimpleWS final : public ThresholdWS {
 public:
  explicit SimpleWS(double lambda, std::size_t truncation = 0)
      : ThresholdWS(lambda, 2, truncation) {}
  [[nodiscard]] std::string name() const override { return "simple-ws"; }
};

}  // namespace lsm::core
