// Name-based model factory so tools and scripts can build any model
// variant from strings ("threshold", T=4) without compiling against each
// class, plus the introspection surface (model_specs) that CLIs and the
// experiment runner derive their parameter handling from. Parameter keys
// follow the paper's symbols.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace lsm::core {

/// Extra parameters by short name. Accepted keys, defaults and docs are
/// per model: see model_specs(). make_model rejects keys the named model
/// does not accept.
using ModelParams = std::map<std::string, double>;

/// One accepted parameter of a model: key, default used when the key is
/// absent, and a one-line description for --list style help.
struct ParamSpec {
  std::string key;
  double fallback = 0.0;
  std::string doc;
};

/// Introspection record for one registered model.
struct ModelSpec {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;

  [[nodiscard]] bool accepts(const std::string& key) const;
  /// The default for `key`; throws util::Error when the key is unknown.
  [[nodiscard]] double fallback(const std::string& key) const;
};

/// Every registered model with its accepted parameters, in presentation
/// order. The single source of truth model_names()/make_model dispatch on.
[[nodiscard]] const std::vector<ModelSpec>& model_specs();

/// Spec for one model name; throws util::Error for an unknown name.
[[nodiscard]] const ModelSpec& model_spec(const std::string& name);

/// Builds a model by name. Known names (see model_names()):
///   no-stealing, simple, threshold, preemptive, repeated, multi-choice,
///   multi-steal, composed, erlang, transfer, staged-transfer, rebalance,
///   heterogeneous, spawning, sharing
/// Throws util::Error for an unknown name or a parameter key the model
/// does not accept, util::LogicError for invalid parameter combinations
/// (propagated from the model's constructor).
[[nodiscard]] std::unique_ptr<MeanFieldModel> make_model(
    const std::string& name, double lambda, const ModelParams& params = {});

/// All names make_model accepts, in presentation order.
[[nodiscard]] const std::vector<std::string>& model_names();

}  // namespace lsm::core
