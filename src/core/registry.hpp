// Name-based model factory so tools and scripts can build any model
// variant from strings ("threshold", T=4) without compiling against each
// class, plus the introspection surface (model_specs) that CLIs and the
// experiment runner derive their parameter handling from. Parameter keys
// follow the paper's symbols; the `service` key carries a distribution
// spec string (see core::parse_service) instead of a number.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/model.hpp"

namespace lsm::core {

/// One model parameter value: a number for the classic knobs (T, S, r,
/// ...) or a text spec for distribution-kind parameters (`service`).
/// Implicitly constructible from arithmetic types and strings so
/// `{{"T", 4}, {"service", "hyperexp:4"}}` initializer lists read
/// naturally.
struct ParamValue {
  double number = 0.0;
  std::string text;
  bool is_text = false;

  ParamValue() = default;
  template <typename T>
    requires std::is_arithmetic_v<T>
  ParamValue(T v) : number(static_cast<double>(v)) {}  // NOLINT
  ParamValue(std::string s) : text(std::move(s)), is_text(true) {}  // NOLINT
  ParamValue(const char* s) : text(s), is_text(true) {}             // NOLINT

  friend bool operator==(const ParamValue& a, const ParamValue& b) {
    return a.is_text == b.is_text &&
           (a.is_text ? a.text == b.text : a.number == b.number);
  }
};

/// Extra parameters by short name. Accepted keys, defaults and docs are
/// per model: see model_specs(). make_model rejects keys the named model
/// does not accept.
using ModelParams = std::map<std::string, ParamValue>;

/// One accepted parameter of a model: key, default used when the key is
/// absent, and a one-line description for --list style help. Number
/// parameters default to `fallback`; Distribution parameters carry their
/// default spec string in `fallback_text`.
struct ParamSpec {
  enum class Kind { Number, Distribution };

  ParamSpec(std::string key_in, double fallback_in, std::string doc_in,
            Kind kind_in = Kind::Number, std::string fallback_text_in = "",
            bool deprecated_in = false)
      : key(std::move(key_in)),
        fallback(fallback_in),
        doc(std::move(doc_in)),
        kind(kind_in),
        fallback_text(std::move(fallback_text_in)),
        deprecated(deprecated_in) {}

  std::string key;
  double fallback = 0.0;
  std::string doc;
  Kind kind = Kind::Number;
  std::string fallback_text;
  /// Accepted (with a one-time warning) but excluded from generated help
  /// defaults; a deprecated key usually aliases a preferred one and the
  /// two cannot be given together.
  bool deprecated = false;
};

/// Introspection record for one registered model.
struct ModelSpec {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;

  [[nodiscard]] bool accepts(const std::string& key) const;
  /// The spec of parameter `key`; throws util::Error when unknown.
  [[nodiscard]] const ParamSpec& param(const std::string& key) const;
  /// The numeric default for `key`; throws util::Error when the key is
  /// unknown.
  [[nodiscard]] double fallback(const std::string& key) const;
};

/// Every registered model with its accepted parameters, in presentation
/// order. The single source of truth model_names()/make_model dispatch on.
[[nodiscard]] const std::vector<ModelSpec>& model_specs();

/// Spec for one model name; throws util::Error for an unknown name.
[[nodiscard]] const ModelSpec& model_spec(const std::string& name);

/// Builds a model by name. Known names (see model_names()):
///   no-stealing, simple, threshold, preemptive, repeated, multi-choice,
///   multi-steal, composed, erlang, transfer, staged-transfer, rebalance,
///   heterogeneous, spawning, sharing
/// Models declaring a `service` parameter accept a distribution spec
/// (`exp | erlang:k | hyperexp:scv | coxian:k,scv | heavytail:scv[,k]`);
/// exponential service dispatches to the classic (scalar-state) classes,
/// anything else to the phase-type generalizations.
/// Throws util::Error for an unknown name or a parameter key the model
/// does not accept, util::LogicError for invalid parameter combinations
/// (propagated from the model's constructor).
[[nodiscard]] std::unique_ptr<MeanFieldModel> make_model(
    const std::string& name, double lambda, const ModelParams& params = {});

/// All names make_model accepts, in presentation order.
[[nodiscard]] const std::vector<std::string>& model_names();

}  // namespace lsm::core
