// Name-based model factory so tools and scripts can build any model
// variant from strings ("threshold", T=4) without compiling against each
// class. Parameter keys follow the paper's symbols.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace lsm::core {

/// Extra parameters by short name; every entry is optional and defaulted:
///   T (threshold, 2)    S (sharing threshold, 2)
///   d (choices, 1)      k (steal count, 1)
///   B (begin steal, 0)  r (retry/transfer/rebalance rate, model default)
///   c (stages, 10)      f (fast fraction, 0.25)
///   mu_f / mu_s (2.0 / 0.8)   int (internal spawn rate, 0)
///   L (truncation override, auto)
using ModelParams = std::map<std::string, double>;

/// Builds a model by name. Known names (see model_names()):
///   no-stealing, simple, threshold, preemptive, repeated, multi-choice,
///   multi-steal, composed, erlang, transfer, staged-transfer, rebalance,
///   heterogeneous, spawning, sharing
/// Throws util::Error for an unknown name, util::LogicError for invalid
/// parameter combinations (propagated from the model's constructor).
[[nodiscard]] std::unique_ptr<MeanFieldModel> make_model(
    const std::string& name, double lambda, const ModelParams& params = {});

/// All names make_model accepts, in presentation order.
[[nodiscard]] const std::vector<std::string>& model_names();

}  // namespace lsm::core
