#include "core/rebalance_ws.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsm::core {

RebalanceWS::RebalanceWS(double lambda, RateFn rate, std::size_t truncation)
    : MeanFieldModel(
          lambda, truncation != 0 ? truncation : default_truncation(lambda)),
      rate_(std::move(rate)) {
  trunc_explicit_ = truncation != 0;
  LSM_EXPECT(static_cast<bool>(rate_), "rate function must be callable");
  LSM_EXPECT(lambda < 1.0, "model is unstable for lambda >= 1");
}

RebalanceWS::RebalanceWS(double lambda, double rate, std::size_t truncation)
    : RebalanceWS(
          lambda,
          [rate](std::size_t load) { return load >= 1 ? rate : 0.0; },
          truncation) {
  LSM_EXPECT(rate >= 0.0, "re-balance rate must be non-negative");
}

std::string RebalanceWS::name() const { return "rebalance-ws"; }

void RebalanceWS::deriv(double /*t*/, const ode::State& s,
                        ode::State& ds) const {
  const std::size_t L = trunc_;
  LSM_ASSERT(s.size() == L + 1 && ds.size() == L + 1);

  // Point masses p_j = s_j - s_{j+1} and per-load trigger rates.
  std::vector<double> p(L + 1), rj(L + 1);
  for (std::size_t j = 0; j <= L; ++j) {
    p[j] = s[j] - (j < L ? s[j + 1] : 0.0);
    rj[j] = rate_(j);
  }

  // diff[i] accumulates range updates of the interaction term; the actual
  // contribution to ds_i is the prefix sum of diff over 1..i.
  std::vector<double> diff(L + 3, 0.0);
  for (std::size_t j = 0; j <= L; ++j) {
    if (rj[j] == 0.0 || p[j] == 0.0) continue;
    for (std::size_t k = 0; k <= L; ++k) {
      if (p[k] == 0.0) continue;
      const double wgt = rj[j] * p[j] * p[k];
      const std::size_t lo = (j + k) / 2;        // floor
      const std::size_t hi = (j + k + 1) / 2;    // ceil
      const std::size_t mn = std::min(j, k);
      const std::size_t mx = std::max(j, k);
      // Delta_i = +1 on (mn, lo], -1 on (hi, mx] (empty when balanced).
      if (lo > mn) {
        diff[mn + 1] += wgt;
        diff[std::min(lo + 1, L + 2)] -= wgt;
      }
      if (mx > hi) {
        diff[std::min(hi + 1, L + 2)] -= wgt;
        diff[std::min(mx + 1, L + 2)] += wgt;
      }
    }
  }

  ds[0] = 0.0;
  double interaction = 0.0;
  for (std::size_t i = 1; i <= L; ++i) {
    interaction += diff[i];
    const double s_next = (i < L) ? s[i + 1] : 0.0;
    ds[i] = lambda_ * (s[i - 1] - s[i]) - (s[i] - s_next) + interaction;
  }
}

}  // namespace lsm::core
