#include "core/repeated_steal_ws.hpp"

#include "util/error.hpp"

namespace lsm::core {

RepeatedStealWS::RepeatedStealWS(double lambda, double retry_rate,
                                 std::size_t threshold, std::size_t truncation)
    : MeanFieldModel(lambda, truncation != 0
                                 ? truncation
                                 : default_truncation(lambda) + threshold),
      retry_rate_(retry_rate),
      threshold_(threshold) {
  trunc_explicit_ = truncation != 0;
  LSM_EXPECT(retry_rate >= 0.0, "retry rate must be non-negative");
  LSM_EXPECT(threshold >= 2, "steal threshold must be at least 2");
  LSM_EXPECT(lambda < 1.0, "model is unstable for lambda >= 1");
  LSM_EXPECT(trunc_ > threshold + 2, "truncation too small for threshold");
}

std::string RepeatedStealWS::name() const {
  return "repeated-steal-ws(r=" + std::to_string(retry_rate_) +
         ",T=" + std::to_string(threshold_) + ")";
}

void RepeatedStealWS::deriv(double /*t*/, const ode::State& s,
                            ode::State& ds) const {
  const std::size_t L = trunc_;
  const std::size_t T = threshold_;
  LSM_ASSERT(s.size() == L + 1 && ds.size() == L + 1);
  const double s_T = s[T];
  const double empty = s[0] - s[1];
  // Combined rate of steal events hitting heavy victims: on-empty attempts
  // from completing processors plus retries from already-empty ones.
  const double attempt_rate = (s[1] - s[2]) + retry_rate_ * empty;
  ds[0] = 0.0;
  ds[1] = lambda_ * (s[0] - s[1]) + retry_rate_ * empty * s_T -
          (s[1] - s[2]) * (1.0 - s_T);
  for (std::size_t i = 2; i <= L; ++i) {
    const double s_next = (i < L) ? s[i + 1] : 0.0;
    double d = lambda_ * (s[i - 1] - s[i]) - (s[i] - s_next);
    if (i >= T) d -= (s[i] - s_next) * attempt_rate;
    ds[i] = d;
  }
}

double RepeatedStealWS::predicted_tail_ratio(const ode::State& pi) const {
  LSM_ASSERT(pi.size() >= 3);
  return lambda_ /
         (1.0 + retry_rate_ * (1.0 - lambda_) + lambda_ - pi[2]);
}

}  // namespace lsm::core
