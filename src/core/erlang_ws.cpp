#include "core/erlang_ws.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lsm::core {

namespace {
std::size_t pick_truncation(double lambda, std::size_t stages,
                            std::size_t requested) {
  if (requested != 0) return requested;
  // Size in whole tasks using the exponential-service tail ratio as an
  // upper bound (constant service decays faster; Section 3.1 / Table 2).
  const double pi2 = simple_ws_pi2(std::min(lambda, 0.999));
  const double rho = lambda / (1.0 + lambda - pi2);
  const double tasks_needed = std::log(1e-12) / std::log(rho);
  const auto tasks = static_cast<std::size_t>(
      std::clamp(tasks_needed + 6.0, 24.0, 400.0));
  return stages * (tasks + 1);
}
}  // namespace

ErlangServiceWS::ErlangServiceWS(double lambda, std::size_t stages,
                                 std::size_t truncation)
    : MeanFieldModel(lambda, pick_truncation(lambda, stages, truncation)),
      stages_(stages) {
  trunc_explicit_ = truncation != 0;
  LSM_EXPECT(stages >= 1, "need at least one service stage");
  LSM_EXPECT(lambda < 1.0, "model is unstable for lambda >= 1");
  LSM_EXPECT(trunc_ >= 3 * stages, "truncation must cover several tasks");
}

std::string ErlangServiceWS::name() const {
  return "erlang-ws(c=" + std::to_string(stages_) + ")";
}

void ErlangServiceWS::deriv(double /*t*/, const ode::State& s,
                            ode::State& ds) const {
  const std::size_t L = trunc_;
  const std::size_t c = stages_;
  LSM_ASSERT(s.size() == L + 1 && ds.size() == L + 1);
  auto at = [&](std::size_t i) { return i <= L ? s[i] : 0.0; };
  const auto mu = static_cast<double>(c);  // per-stage completion rate
  const double finishers = s[1] - s[2];    // procs on their final stage
  ds[0] = 0.0;
  ds[1] = lambda_ * (s[0] - s[1]) - mu * finishers * (1.0 - at(c + 1));
  for (std::size_t i = 2; i <= std::min(c, L); ++i) {
    const double s_next = (i < L) ? s[i + 1] : 0.0;
    ds[i] = lambda_ * (s[0] - s[i]) + mu * finishers * at(i + c) -
            mu * (s[i] - s_next);
  }
  for (std::size_t i = c + 1; i <= L; ++i) {
    const double s_next = (i < L) ? s[i + 1] : 0.0;
    ds[i] = lambda_ * (s[i - c] - s[i]) - mu * (s[i] - s_next) -
            mu * (s[i] - at(i + c)) * finishers;
  }
}

double ErlangServiceWS::mean_tasks(const ode::State& s) const {
  LSM_ASSERT(s.size() == trunc_ + 1);
  double acc = 0.0;
  // ceil(stages/c) tasks: sum P(stages >= kc + 1) over k >= 0.
  for (std::size_t i = 1; i <= trunc_; i += stages_) acc += s[i];
  return acc;
}

}  // namespace lsm::core
