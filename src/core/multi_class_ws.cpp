#include "core/multi_class_ws.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lsm::core {

MultiClassWS::MultiClassWS(double lambda,
                           std::vector<ProcessorClass> classes,
                           std::size_t threshold, std::size_t truncation)
    : MeanFieldModel(lambda, truncation != 0
                                 ? truncation
                                 : default_truncation(lambda) + threshold),
      classes_(std::move(classes)),
      threshold_(threshold) {
  trunc_explicit_ = truncation != 0;
  LSM_EXPECT(!classes_.empty(), "need at least one processor class");
  LSM_EXPECT(threshold >= 2, "steal threshold must be at least 2");
  double total_fraction = 0.0;
  double capacity = 0.0;
  for (const auto& c : classes_) {
    LSM_EXPECT(c.fraction > 0.0, "class fractions must be positive");
    LSM_EXPECT(c.rate > 0.0, "class service rates must be positive");
    total_fraction += c.fraction;
    capacity += c.fraction * c.rate;
  }
  LSM_EXPECT(std::abs(total_fraction - 1.0) < 1e-9,
             "class fractions must sum to 1");
  LSM_EXPECT(lambda < capacity, "offered load exceeds aggregate capacity");
}

std::string MultiClassWS::name() const {
  return "multi-class-ws(K=" + std::to_string(classes_.size()) +
         ",T=" + std::to_string(threshold_) + ")";
}

ode::State MultiClassWS::empty_state() const {
  ode::State s(dimension(), 0.0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    s[index(c, 0)] = classes_[c].fraction;
  }
  return s;
}

void MultiClassWS::deriv(double /*t*/, const ode::State& x,
                         ode::State& dx) const {
  const std::size_t L = trunc_;
  const std::size_t T = threshold_;
  const std::size_t K = classes_.size();
  LSM_ASSERT(x.size() == K * (L + 1) && dx.size() == K * (L + 1));
  auto u = [&](std::size_t c, std::size_t i) {
    return i <= L ? x[index(c, i)] : 0.0;
  };

  double steal_rate = 0.0;  // completions of last tasks across all classes
  double heavy = 0.0;       // fraction of processors with >= T tasks
  for (std::size_t c = 0; c < K; ++c) {
    steal_rate += classes_[c].rate * (u(c, 1) - u(c, 2));
    heavy += u(c, T);
  }
  const double fail = 1.0 - heavy;

  for (std::size_t c = 0; c < K; ++c) {
    const double mu = classes_[c].rate;
    dx[index(c, 0)] = 0.0;
    for (std::size_t i = 1; i <= L; ++i) {
      double d = lambda_ * (u(c, i - 1) - u(c, i));
      if (i == 1) {
        d -= mu * (u(c, 1) - u(c, 2)) * fail;
      } else {
        d -= mu * (u(c, i) - u(c, i + 1));
      }
      if (i >= T) d -= steal_rate * (u(c, i) - u(c, i + 1));
      dx[index(c, i)] = d;
    }
  }
}

void MultiClassWS::project(ode::State& x) const {
  const std::size_t W = trunc_ + 1;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    project_segment(x, c * W, (c + 1) * W, classes_[c].fraction);
  }
}

void MultiClassWS::root_residual(const ode::State& x, ode::State& f) const {
  deriv(0.0, x, f);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    f[index(c, 0)] = classes_[c].fraction - x[index(c, 0)];
  }
}

double MultiClassWS::mean_tasks(const ode::State& x) const {
  double acc = 0.0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (std::size_t i = trunc_; i >= 1; --i) acc += x[index(c, i)];
  }
  return acc;
}

double MultiClassWS::mean_tasks_in_class(const ode::State& x,
                                         std::size_t c) const {
  LSM_EXPECT(c < classes_.size(), "class index out of range");
  double acc = 0.0;
  for (std::size_t i = trunc_; i >= 1; --i) acc += x[index(c, i)];
  return acc / classes_[c].fraction;
}

}  // namespace lsm::core
