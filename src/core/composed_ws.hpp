// Composed work stealing model: every Section 2-3 policy dimension in one
// family, as the paper suggests ("the extensions can be combined as
// desired"). Parameters:
//
//   T  victim threshold, relative to the thief's load (absolute when the
//      thief is empty): a thief at load j steals from victims >= j + T
//   d  victims probed per attempt; steal from the most loaded
//   k  tasks taken per successful steal (2k <= T)
//   B  preemptive trigger: attempts fire on completions landing at j <= B
//   r  retry rate for idle (empty, load-0) processors
//
// Derivation sketch (p_j = s_j - s_{j+1}, succ_j = 1 - (1-s_{j+T})^d,
// R_j = thief-attempt rate at load j):
//
//   R_j = [j <= B] (s_{j+1} - s_{j+2}) + [j == 0] r (s_0 - s_1)
//
//   ds_i/dt = l(s_{i-1} - s_i)
//     - (s_i - s_{i+1}) (1 - [i-1 <= B] succ_{i-1})          completions
//     + sum_{j = max(0,i-k)}^{min(B, i-2)} (s_{j+1}-s_{j+2}) succ_j
//     + [1 <= i <= k] r (s_0 - s_1) succ_0                   thief jumps
//     - sum_j R_j [(1 - s_{i+k})^d - (1 - s_{max(i, j+T)})^d]  victims
//       (terms with i + k <= j + T vanish)
//
// Setting (d,k,B,r) = (1,1,0,0) recovers ThresholdWS; each single
// parameter recovers the corresponding specialized model (tested in
// tests/model_reduction_test.cpp).
#pragma once

#include "core/model.hpp"

namespace lsm::core {

struct ComposedPolicy {
  std::size_t threshold = 2;    ///< T >= 2
  std::size_t choices = 1;      ///< d >= 1
  std::size_t steal_count = 1;  ///< k >= 1, 2k <= T
  std::size_t begin_steal = 0;  ///< B >= 0
  double retry_rate = 0.0;      ///< r >= 0
};

class ComposedWS final : public MeanFieldModel {
 public:
  ComposedWS(double lambda, ComposedPolicy policy, std::size_t truncation = 0);

  void deriv(double t, const ode::State& s, ode::State& ds) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const ComposedPolicy& policy() const noexcept {
    return policy_;
  }

  [[nodiscard]] std::size_t min_truncation() const override {
    return policy_.threshold + policy_.begin_steal + policy_.steal_count + 3;
  }

 private:
  ComposedPolicy policy_;
};

}  // namespace lsm::core
