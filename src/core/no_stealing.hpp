// Mean-field model of n independent M/M/1 queues (paper, equation (1)):
//
//   ds_i/dt = lambda (s_{i-1} - s_i) - (s_i - s_{i+1})
//
// The baseline every stealing variant is compared against: its fixed point
// is the M/M/1 stationary tail pi_i = lambda^i, giving mean sojourn time
// 1 / (1 - lambda).
#pragma once

#include "core/model.hpp"

namespace lsm::core {

class NoStealing final : public MeanFieldModel {
 public:
  /// truncation = 0 picks an automatic L sized to lambda's tail decay.
  explicit NoStealing(double lambda, std::size_t truncation = 0);

  void deriv(double t, const ode::State& s, ode::State& ds) const override;
  [[nodiscard]] bool rhs_batch(std::size_t nb, const double* lambdas,
                               const double* x, double* dx) const override;
  [[nodiscard]] std::string name() const override { return "no-stealing"; }

  /// Closed-form stationary tails pi_i = lambda^i (truncated).
  [[nodiscard]] ode::State analytic_fixed_point() const;

  /// Closed-form mean sojourn time 1 / (1 - lambda).
  [[nodiscard]] double analytic_sojourn() const;
};

}  // namespace lsm::core
