// Heterogeneous processor speeds (paper, Section 3.5): a fixed fraction of
// fast processors (service rate mu_f) and slow processors (mu_s), each
// receiving Poisson(lambda) arrivals, with threshold stealing across the
// whole machine (uniform victim choice, instantaneous transfer).
//
// State: u_i = fraction of ALL processors that are fast with >= i tasks
// (u_0 = fast_fraction), v_i likewise for slow (v_0 = 1 - fast_fraction).
//
//   du_1/dt = l(u_0 - u_1) - mu_f (u_1 - u_2)(1 - u_T - v_T)
//   du_i/dt = l(u_{i-1} - u_i) - mu_f (u_i - u_{i+1})          2 <= i < T
//   du_i/dt = ... - R (u_i - u_{i+1})                              i >= T
// (and symmetrically for v), where R = mu_f(u_1-u_2) + mu_s(v_1-v_2) is
// the total steal-attempt rate. At the fixed point throughput balances:
// mu_f u_1 + mu_s v_1 = lambda.
#pragma once

#include "core/model.hpp"

namespace lsm::core {

class HeterogeneousWS final : public MeanFieldModel {
 public:
  HeterogeneousWS(double lambda, double fast_fraction, double fast_rate,
                  double slow_rate, std::size_t threshold,
                  std::size_t truncation = 0);

  /// Packed state: [u_0..u_L, v_0..v_L] -> dimension 2L + 2.
  [[nodiscard]] std::size_t dimension() const override {
    return 2 * (trunc_ + 1);
  }

  void deriv(double t, const ode::State& s, ode::State& ds) const override;
  [[nodiscard]] std::string name() const override;
  void project(ode::State& s) const override;
  void root_residual(const ode::State& s, ode::State& f) const override;
  [[nodiscard]] ode::State empty_state() const override;

  [[nodiscard]] double fast_fraction() const noexcept { return frac_; }
  [[nodiscard]] double fast_rate() const noexcept { return mu_fast_; }
  [[nodiscard]] double slow_rate() const noexcept { return mu_slow_; }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  [[nodiscard]] std::size_t tail_segments() const override { return 2; }

  [[nodiscard]] std::size_t min_truncation() const override {
    return threshold_ + 3;
  }

  [[nodiscard]] double mean_tasks(const ode::State& s) const override;

  /// Per-class mean load conditioned on class membership.
  [[nodiscard]] double mean_tasks_fast(const ode::State& s) const;
  [[nodiscard]] double mean_tasks_slow(const ode::State& s) const;

  [[nodiscard]] std::size_t v_index(std::size_t i) const noexcept {
    return trunc_ + 1 + i;
  }

 private:
  double frac_;
  double mu_fast_;
  double mu_slow_;
  std::size_t threshold_;
};

}  // namespace lsm::core
