#include "core/fixed_point.hpp"

#include <utility>

#include "ode/implicit.hpp"
#include "ode/newton.hpp"
#include "ode/steady_state.hpp"

namespace lsm::core {

namespace {

/// Adapter presenting the model's root_residual as an OdeSystem so the
/// generic Newton solver can drive it.
class RootSystem final : public ode::OdeSystem {
 public:
  explicit RootSystem(const MeanFieldModel& model) : model_(model) {}

  void deriv(double /*t*/, const ode::State& s, ode::State& ds) const override {
    model_.root_residual(s, ds);
  }
  [[nodiscard]] std::size_t dimension() const override {
    return model_.dimension();
  }
  void project(ode::State& s) const override { model_.project(s); }

 private:
  const MeanFieldModel& model_;
};

}  // namespace

FixedPointResult solve_fixed_point(const MeanFieldModel& model,
                                   const FixedPointOptions& opts) {
  FixedPointResult result;
  if (const std::size_t band = model.stiff_bandwidth(); band > 0) {
    // Stiff path: pseudo-transient continuation with banded chord Newton.
    ode::StiffRelaxOptions sopts;
    sopts.implicit.kl = band;
    sopts.implicit.ku = band;
    sopts.deriv_tol = std::min(opts.relax_tol, 1e-10);
    auto relaxed =
        ode::stiff_relax_to_fixed_point(model, model.empty_state(), sopts);
    result.residual = relaxed.deriv_norm;
    result.state = std::move(relaxed.state);
  } else {
    ode::SteadyStateOptions sopts;
    sopts.deriv_tol = opts.relax_tol;
    sopts.t_max = opts.t_max;
    sopts.check_interval = opts.check_interval;
    sopts.adaptive.rtol = 1e-9;   // keep the integrator's noise floor well
    sopts.adaptive.atol = 1e-12;  // below deriv_tol so relaxation terminates
    auto relaxed =
        ode::relax_to_fixed_point(model, model.empty_state(), sopts);
    result.relax_time = relaxed.time;
    result.residual = relaxed.deriv_norm;
    result.state = std::move(relaxed.state);
  }

  if (opts.polish && model.dimension() <= opts.newton_max_dim) {
    RootSystem root(model);
    ode::NewtonOptions nopts;
    nopts.tol = opts.polish_tol;
    auto polished = ode::newton_fixed_point(root, result.state, nopts);
    if (polished.converged) {
      result.state = std::move(polished.state);
      result.residual = polished.residual_norm;
      result.polished = true;
    }
  }
  return result;
}

double fixed_point_sojourn(const MeanFieldModel& model,
                           const FixedPointOptions& opts) {
  return model.mean_sojourn(solve_fixed_point(model, opts).state);
}

}  // namespace lsm::core
