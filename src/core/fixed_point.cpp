#include "core/fixed_point.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "ode/newton.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/fault_injection.hpp"
#include "util/json.hpp"

namespace lsm::core {

namespace {

double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Adapter presenting the model's root_residual as an OdeSystem so the
/// generic Newton solver can drive it.
class RootSystem final : public ode::OdeSystem {
 public:
  explicit RootSystem(const MeanFieldModel& model) : model_(model) {}

  void deriv(double /*t*/, const ode::State& s, ode::State& ds) const override {
    model_.root_residual(s, ds);
  }
  [[nodiscard]] bool deriv_batch(double /*t*/, std::size_t nb, const double* x,
                                 double* dx) const override {
    return model_.root_residual_batch(nb, nullptr, x, dx);
  }
  [[nodiscard]] std::size_t dimension() const override {
    return model_.dimension();
  }
  void project(ode::State& s) const override { model_.project(s); }

 private:
  const MeanFieldModel& model_;
};

/// Restores the model's truncation on scope exit unless release()d; keeps
/// the Auto mode exception-safe (set_truncation is const but sticky).
class TruncationGuard {
 public:
  explicit TruncationGuard(const MeanFieldModel& model)
      : model_(model), original_(model.truncation()) {}
  TruncationGuard(const TruncationGuard&) = delete;
  TruncationGuard& operator=(const TruncationGuard&) = delete;
  ~TruncationGuard() {
    if (armed_) model_.set_truncation(original_);
  }
  void release() noexcept { armed_ = false; }
  [[nodiscard]] std::size_t original() const noexcept { return original_; }

 private:
  const MeanFieldModel& model_;
  std::size_t original_;
  bool armed_ = true;
};

std::string solve_label(const MeanFieldModel& model) {
  return "model=" + model.name() + " lambda=" + std::to_string(model.lambda()) +
         " L=" + std::to_string(model.truncation());
}

/// One iterative solve at the model's current truncation. Intermediate
/// ladder rungs pass loose = true: they only exist to produce warm starts
/// and tail-mass estimates, so relax_tol accuracy is plenty.
ode::FixedPointSolveResult iterate(const MeanFieldModel& model, ode::State s0,
                                   const FixedPointOptions& opts,
                                   std::size_t spent_evals, double elapsed,
                                   bool loose = false,
                                   bool relax_fallback = true,
                                   bool warm = false) {
  ode::FixedPointSolveOptions sopts;
  sopts.method = opts.method;
  sopts.throw_on_failure = opts.throw_on_failure;
  // Hand each rung only what is left of the ladder-wide budget (never 0,
  // the unlimited sentinel: a fully spent budget fails fast downstream).
  if (opts.max_rhs_evals != 0) {
    sopts.max_rhs_evals = opts.max_rhs_evals > spent_evals
                              ? opts.max_rhs_evals - spent_evals
                              : 1;
  }
  if (opts.max_wall_seconds > 0.0) {
    sopts.max_wall_seconds = std::max(opts.max_wall_seconds - elapsed, 1e-9);
  }
  sopts.stiff_bandwidth = model.stiff_bandwidth();
  sopts.tol = loose ? opts.relax_tol : std::min(opts.relax_tol, 1e-10);
  // Warm continuation solves with a Newton polish downstream stop the
  // accelerator at relax_tol: near-critical AA spends hundreds of weakly
  // contracting iterations on the last two decades, which the (chord)
  // polish closes in a handful of evaluations instead.
  if (warm && opts.polish) sopts.tol = opts.relax_tol;
  sopts.label = solve_label(model);
  sopts.anderson = opts.anderson;
  sopts.krylov = opts.krylov;
  sopts.relax_fallback = relax_fallback;
  // With a Newton polish downstream a stalled-but-close Anderson run is
  // worth accepting over a relaxation fallback (see solve.hpp).
  if (opts.polish) sopts.anderson_accept_factor = 1e3;
  sopts.relax.deriv_tol = opts.relax_tol;
  sopts.relax.t_max = opts.t_max;
  sopts.relax.check_interval = opts.check_interval;
  sopts.relax.adaptive.rtol = 1e-9;   // keep the integrator's noise floor
  sopts.relax.adaptive.atol = 1e-12;  // below deriv_tol so relaxation ends
  // s0 is a continuation warm start: arm the ode-level safeguard so a
  // diverged or basin-escaped warm attempt is redone cold from the empty
  // state rather than trusted.
  if (warm) sopts.cold_start = model.empty_state();
  return ode::solve_fixed_point(model, std::move(s0), sopts);
}

void accumulate(FixedPointResult& result,
                ode::FixedPointSolveResult&& rung) {
  result.state = std::move(rung.state);
  result.residual = rung.residual;
  result.method = rung.method;
  result.rhs_evals += rung.rhs_evals;
  result.iterations += rung.iterations;
  result.relax_time += rung.relax_time;
  result.fellback = result.fellback || rung.fellback;
  result.status = rung.status;
  result.failure = std::move(rung.failure);
}

/// Finalizes an early (non-Converged) return: the state fields describe
/// the best iterate at the rung where the ladder stopped. Any armed
/// TruncationGuard still restores the model itself on unwind.
FixedPointResult finish_failed(FixedPointResult&& result, std::size_t rung) {
  result.final_truncation = rung;
  result.state_truncation = rung;
  result.compact_state = result.state;
  return std::move(result);
}

void polish(const MeanFieldModel& model, FixedPointResult& result,
            const FixedPointOptions& opts,
            ode::NewtonWorkspace* reuse = nullptr) {
  if (!opts.polish) return;
  const RootSystem root(model);
  const ode::CountingSystem counted(root);
  if (model.dimension() > opts.newton_max_dim) {
    if (!opts.krylov_polish) {
      // Too large for the dense Jacobian and the matrix-free path is off:
      // record the skip instead of silently reporting the iterative
      // residual as if it had been polished.
      result.polish_skipped = true;
      return;
    }
    ode::NewtonKrylovOptions kopts = opts.krylov;
    kopts.tol = opts.polish_tol;
    auto nk = ode::newton_krylov_fixed_point(counted, result.state, kopts,
                                             reuse);
    result.rhs_evals += counted.evals();
    // Inexact Newton may stop shy of polish_tol on a hard system; any
    // residual improvement is still worth keeping (polished stays honest:
    // it means the full polish_tol target was reached).
    if (nk.residual_norm < result.residual) {
      result.state = std::move(nk.state);
      result.residual = nk.residual_norm;
      result.polished = nk.converged;
    }
    return;
  }
  ode::NewtonOptions nopts;
  nopts.tol = opts.polish_tol;
  auto polished = ode::newton_fixed_point(counted, result.state, nopts, reuse);
  result.rhs_evals += counted.evals();
  if (polished.converged) {
    result.state = std::move(polished.state);
    result.residual = polished.residual_norm;
    result.polished = true;
  }
}

/// Continuation warm solve: the warm state replaces the truncation ladder.
/// The state is geometrically re-discretized to a tail-mass-compatible L
/// (the previous λ's tail may be too short for this one — growing BEFORE
/// the solve avoids an Anderson failure at a starved truncation), solved
/// tightly once under the ode cold-start safeguard, tail-rechecked, and
/// polished (with the chain's Newton chord when supplied).
FixedPointResult solve_warm(const MeanFieldModel& model,
                            const FixedPointOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  TruncationGuard guard(model);
  const std::size_t cap = std::max(guard.original(), model.min_truncation());
  const bool adaptive =
      opts.truncation == TruncationMode::Adaptive ||
      (opts.truncation == TruncationMode::Auto &&
       !model.truncation_explicit() && model.stiff_bandwidth() == 0);

  FixedPointResult result;
  std::size_t rung;
  ode::State start;
  if (!adaptive) {
    // Stiff / explicit-truncation / Fixed-mode models solve at the
    // constructed truncation; the warm state is just re-discretized to it.
    rung = guard.original();
    model.set_truncation(rung);
    start = model.resized_tail_state(opts.warm_state, opts.warm_truncation);
  } else {
    // Snap the inherited truncation UP onto this model's ladder rung
    // sequence (max(min,24), doubling, capped): matching the cold
    // ladder's quantized rungs keeps warm and cold solves on the same
    // discretization, whose solutions agree to ~1e-12. An off-grid L
    // (the previous λ's cap, say) can sit just below the rung the cold
    // ladder would pick, and the two truncated systems then differ by
    // the boundary-suppression error — ~1e-9 at marginal λ.
    rung = std::min(cap, std::max<std::size_t>(model.min_truncation(), 24));
    while (rung < cap && rung < opts.warm_truncation) {
      rung = std::min(cap, 2 * rung);
    }
    model.set_truncation(rung);
    start = model.resized_tail_state(opts.warm_state, opts.warm_truncation);
    // Tail-mass-aware pre-growth of the inherited discretization: the
    // previous λ's tail may be too short for this one.
    while (rung < cap && model.tail_mass(start) > opts.tail_tol) {
      const std::size_t next = std::min(cap, 2 * rung);
      model.set_truncation(next);
      start = model.resized_tail_state(start, rung);
      rung = next;
    }
  }
  model.project(start);  // clean up the grafted extension

  auto first = iterate(model, std::move(start), opts, 0, since(t0),
                       /*loose=*/false, /*relax_fallback=*/true,
                       /*warm=*/true);
  result.warm = !first.warm_rejected;
  accumulate(result, std::move(first));
  if (result.status != ode::SolveStatus::Converged) {
    return finish_failed(std::move(result), rung);
  }

  // The tight solve can reveal tail mass the inherited profile had not
  // built up: grow and re-solve (still warm, still safeguarded).
  while (adaptive && rung < cap &&
         model.tail_mass(result.state) > opts.tail_tol) {
    const std::size_t next = std::min(cap, 2 * rung);
    model.set_truncation(next);
    ode::State s = model.resized_tail_state(result.state, rung);
    rung = next;
    accumulate(result,
               iterate(model, std::move(s), opts, result.rhs_evals, since(t0),
                       /*loose=*/false, /*relax_fallback=*/true,
                       /*warm=*/true));
    if (result.status != ode::SolveStatus::Converged) {
      return finish_failed(std::move(result), rung);
    }
  }

  // The chord workspace only serves genuinely warm chains: a rejected warm
  // attempt was answered by the cold path, which polishes classically.
  polish(model, result, opts, result.warm ? opts.newton_reuse : nullptr);
  result.final_truncation = rung;
  result.compact_state = result.state;

  if (opts.truncation == TruncationMode::Adaptive) {
    guard.release();  // caller asked for the compact discretization
    result.state_truncation = rung;
    return result;
  }
  if (rung != guard.original()) {
    model.set_truncation(guard.original());
    result.state = model.resized_tail_state(result.state, rung);
    ode::State f(model.dimension());
    model.deriv(0.0, result.state, f);
    result.residual = ode::norm_linf(f);
    result.rhs_evals += 1;
  }
  result.state_truncation = guard.original();
  return result;
}

}  // namespace

FixedPointResult solve_fixed_point(const MeanFieldModel& model,
                                   const FixedPointOptions& opts) {
  if (const auto& injector = util::FaultInjector::instance();
      injector.armed()) {
    // One decision per solve, taken before any work so injected failures
    // leave no half-updated model/continuation state behind. The context
    // is truncation-independent so tests can predict it cheaply.
    const std::string context =
        "model=" + model.name() +
        " lambda=" + util::Json::number_to_string(model.lambda());
    if (injector.should_fail(util::FaultSite::SolverDiverge, context)) {
      util::Failure f;
      f.kind = util::FailureKind::SolverDiverged;
      f.message = "injected solver divergence";
      f.context = context;
      if (opts.throw_on_failure) throw util::FailureError(std::move(f));
      FixedPointResult failed;
      failed.status = ode::SolveStatus::Diverged;
      failed.failure = f.describe();
      return failed;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (!opts.warm_state.empty()) {
    LSM_EXPECT(opts.warm_truncation > 0,
               "warm_state supplied without warm_truncation");
    return solve_warm(model, opts);
  }

  // Auto mode only re-discretizes non-stiff, auto-sized models: the stiff
  // path's cost is dominated by banded Jacobian refreshes, so re-solving
  // every rung roughly doubles the evaluation count instead of saving it.
  const bool adaptive =
      opts.truncation == TruncationMode::Adaptive ||
      (opts.truncation == TruncationMode::Auto &&
       !model.truncation_explicit() && model.stiff_bandwidth() == 0);

  FixedPointResult result;
  if (!adaptive) {
    accumulate(result, iterate(model, model.empty_state(), opts, 0, since(t0)));
    if (result.status != ode::SolveStatus::Converged) {
      return finish_failed(std::move(result), model.truncation());
    }
    polish(model, result, opts);
    result.final_truncation = model.truncation();
    result.state_truncation = model.truncation();
    result.compact_state = result.state;
    return result;
  }

  TruncationGuard guard(model);
  // The constructed truncation is the known-safe ceiling: the ladder never
  // grows past it, so an Auto solve can only match or shrink the work.
  const std::size_t cap = std::max(guard.original(), model.min_truncation());
  std::size_t rung =
      std::min(cap, std::max<std::size_t>(model.min_truncation(), 24));
  model.set_truncation(rung);
  ode::State start = model.empty_state();
  bool cold = true;  // start is the empty state, not a grafted warm start
  while (true) {
    // Loose rung solve, suppressing the relaxation fallback: a grafted
    // warm start occasionally misleads Anderson (the optimal profile at
    // the previous truncation can be structurally far from this rung's),
    // and a cold restart is orders of magnitude cheaper than relaxation.
    auto rung_result =
        iterate(model, std::move(start), opts, result.rhs_evals, since(t0),
                /*loose=*/true, /*relax_fallback=*/cold);
    if (rung_result.status == ode::SolveStatus::Converged &&
        rung_result.fellback && rung_result.residual > opts.relax_tol) {
      result.rhs_evals += rung_result.rhs_evals;
      result.iterations += rung_result.iterations;
      rung_result = iterate(model, model.empty_state(), opts,
                            result.rhs_evals, since(t0), /*loose=*/true);
    }
    accumulate(result, std::move(rung_result));
    if (result.status != ode::SolveStatus::Converged) {
      return finish_failed(std::move(result), rung);
    }
    const bool resolved =
        model.tail_mass(result.state) <= opts.tail_tol || rung >= cap;
    if (resolved) {
      // Tighten at this rung: warm-started, this costs a handful of
      // iterations on top of the loose solve. The tight solve can reveal
      // tail mass the loose one had not yet built up, so re-check before
      // accepting the rung as final.
      accumulate(result, iterate(model, std::move(result.state), opts,
                                 result.rhs_evals, since(t0)));
      if (result.status != ode::SolveStatus::Converged) {
        return finish_failed(std::move(result), rung);
      }
      if (model.tail_mass(result.state) <= opts.tail_tol || rung >= cap) break;
    }
    const std::size_t next = std::min(cap, 2 * rung);
    model.set_truncation(next);
    start = model.resized_tail_state(result.state, rung);
    cold = false;
    rung = next;
  }
  polish(model, result, opts);
  result.final_truncation = rung;
  result.compact_state = result.state;

  if (opts.truncation == TruncationMode::Adaptive) {
    guard.release();  // caller asked for the compact discretization
    result.state_truncation = rung;
    return result;
  }
  // Auto: make the re-discretization invisible. The guard restores the
  // constructed truncation; extend the state back to match. The grafted
  // entries continue tails already below tail_tol, so observables move by
  // less than the golden tolerances and the recomputed residual stays at
  // the polished level.
  if (rung != guard.original()) {
    model.set_truncation(guard.original());
    result.state = model.resized_tail_state(result.state, rung);
    ode::State f(model.dimension());
    model.deriv(0.0, result.state, f);
    result.residual = ode::norm_linf(f);
    result.rhs_evals += 1;
  }
  result.state_truncation = guard.original();
  return result;
}

FixedPointResult FixedPointContinuation::solve(const MeanFieldModel& model,
                                               FixedPointOptions opts) {
  if (state_.empty()) {
    opts.warm_state = ode::State{};
    opts.warm_truncation = 0;
    opts.newton_reuse = nullptr;
  } else {
    opts.warm_state = state_;
    opts.warm_truncation = truncation_;
    opts.newton_reuse = &newton_;
  }
  FixedPointResult result;
  try {
    result = core::solve_fixed_point(model, opts);
  } catch (...) {
    reset();  // carried state is suspect after any failure
    throw;
  }
  if (result.status != ode::SolveStatus::Converged) {
    reset();
    return result;
  }
  state_ = result.compact_state;
  truncation_ = result.final_truncation;
  return result;
}

void FixedPointContinuation::seed(ode::State state, std::size_t truncation) {
  state_ = std::move(state);
  truncation_ = truncation;
  newton_.reset();
}

void FixedPointContinuation::reset() {
  state_.clear();
  truncation_ = 0;
  newton_.reset();
}

double fixed_point_sojourn(const MeanFieldModel& model,
                           const FixedPointOptions& opts) {
  return model.mean_sojourn(solve_fixed_point(model, opts).state);
}

}  // namespace lsm::core
