#include "serve/protocol.hpp"

#include <utility>

#include "util/error.hpp"

namespace lsm::serve {

namespace {

[[noreturn]] void invalid(std::string message, std::string context = "") {
  util::Failure f;
  f.kind = util::FailureKind::InvalidArgument;
  f.message = std::move(message);
  f.context = std::move(context);
  throw util::FailureError(std::move(f));
}

Verb parse_verb(const std::string& name, const std::string& id) {
  if (name == "sweep") return Verb::Sweep;
  if (name == "estimate") return Verb::Estimate;
  if (name == "status") return Verb::Status;
  if (name == "cancel") return Verb::Cancel;
  if (name == "shutdown") return Verb::Shutdown;
  invalid("unknown verb '" + name +
          "' (expected sweep|estimate|status|cancel|shutdown)",
          id);
}

/// The named member, required to exist; type errors surface through the
/// Json accessors and are re-labelled with the field name by the caller.
const util::Json& require(const util::Json& doc, const std::string& key,
                          const std::string& id) {
  if (!doc.contains(key)) {
    invalid("request is missing required field '" + key + "'", id);
  }
  return doc.at(key);
}

void parse_lambdas(const util::Json& doc, Request& req) {
  const util::Json& grid = require(doc, "lambdas", req.id);
  if (grid.type() != util::Json::Type::Array || grid.size() == 0) {
    invalid("'lambdas' must be a non-empty array of numbers", req.id);
  }
  req.lambdas.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    req.lambdas.push_back(grid.item(i).as_double());
  }
  if (req.verb == Verb::Estimate && req.lambdas.size() != 1) {
    invalid("estimate takes exactly one lambda (use sweep for grids)",
            req.id);
  }
  if (req.lambdas.size() > 1) {
    const bool ascending = req.lambdas[1] > req.lambdas[0];
    for (std::size_t i = 1; i < req.lambdas.size(); ++i) {
      if (ascending ? req.lambdas[i] <= req.lambdas[i - 1]
                    : req.lambdas[i] >= req.lambdas[i - 1]) {
        invalid("'lambdas' must be strictly monotone (warm continuation "
                "chains the grid in order)",
                req.id);
      }
    }
  }
}

void parse_model(const util::Json& doc, Request& req) {
  req.model = require(doc, "model", req.id).as_string();
  const core::ModelSpec* spec = nullptr;
  try {
    spec = &core::model_spec(req.model);
  } catch (const util::Error&) {
    invalid("unknown model '" + req.model + "'", req.id);
  }
  if (doc.contains("params")) {
    const util::Json& params = doc.at("params");
    if (params.type() != util::Json::Type::Object) {
      invalid("'params' must be an object", req.id);
    }
    for (const auto& [key, value] : params.members()) {
      if (!spec->accepts(key)) {
        invalid("model " + req.model + " does not accept parameter '" + key +
                "'",
                req.id);
      }
      if (value.type() == util::Json::Type::String) {
        req.params[key] = value.as_string();
      } else {
        req.params[key] = value.as_double();
      }
    }
  }
}

void parse_budget(const util::Json& doc, Request& req) {
  if (!doc.contains("budget")) return;
  const util::Json& budget = doc.at("budget");
  if (budget.type() != util::Json::Type::Object) {
    invalid("'budget' must be an object", req.id);
  }
  if (budget.contains("max_rhs_evals")) {
    const std::int64_t v = budget.at("max_rhs_evals").as_int();
    if (v < 0) invalid("'budget.max_rhs_evals' must be >= 0", req.id);
    req.max_rhs_evals = static_cast<std::size_t>(v);
  }
  if (budget.contains("max_wall_seconds")) {
    const double v = budget.at("max_wall_seconds").as_double();
    if (v < 0.0) invalid("'budget.max_wall_seconds' must be >= 0", req.id);
    req.max_wall_seconds = v;
  }
}

util::Json error_payload(const std::string& kind, const std::string& message,
                         std::uint32_t attempts) {
  auto err = util::Json::object();
  err["kind"] = kind;
  err["message"] = message;
  if (attempts > 0) err["attempts"] = static_cast<std::size_t>(attempts);
  return err;
}

}  // namespace

const char* to_string(Verb verb) noexcept {
  switch (verb) {
    case Verb::Sweep: return "sweep";
    case Verb::Estimate: return "estimate";
    case Verb::Status: return "status";
    case Verb::Cancel: return "cancel";
    case Verb::Shutdown: return "shutdown";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  util::Json doc;
  try {
    doc = util::Json::parse(line);
  } catch (const util::Error& e) {
    invalid(e.what());
  }
  if (doc.type() != util::Json::Type::Object) {
    invalid("request must be a JSON object");
  }

  Request req;
  // The id is extracted first (best effort) so every later validation
  // error can still be routed to the client's request.
  try {
    if (doc.contains("id")) req.id = doc.at("id").as_string();
  } catch (const util::Error&) {
    invalid("'id' must be a string");
  }

  try {
    req.verb = parse_verb(require(doc, "verb", req.id).as_string(), req.id);

    switch (req.verb) {
      case Verb::Sweep:
      case Verb::Estimate: {
        if (req.id.empty()) {
          invalid("sweep/estimate requests need a non-empty 'id' "
                  "(responses stream and cancel targets it)");
        }
        parse_model(doc, req);
        parse_lambdas(doc, req);
        parse_budget(doc, req);
        if (doc.contains("warm")) req.warm = doc.at("warm").as_bool();
        if (doc.contains("tail_limit")) {
          const std::int64_t v = doc.at("tail_limit").as_int();
          if (v < 0) invalid("'tail_limit' must be >= 0", req.id);
          req.tail_limit = static_cast<std::size_t>(v);
        }
        break;
      }
      case Verb::Cancel:
        req.target = require(doc, "target", req.id).as_string();
        if (req.target.empty()) invalid("'target' must be non-empty", req.id);
        break;
      case Verb::Status:
      case Verb::Shutdown: break;
    }
  } catch (const util::FailureError&) {
    throw;
  } catch (const util::Error& e) {
    // Type errors from the Json accessors (e.g. "lambdas": "oops").
    invalid(e.what(), req.id);
  }
  return req;
}

util::Json point_response(const std::string& id, const exp::JobResult& r) {
  auto j = util::Json::object();
  j["type"] = "point";
  j["id"] = id;
  j["lambda"] = r.lambda;
  if (r.status == exp::JobStatus::Failed) {
    j["status"] = "failed";
    j["error"] = error_payload(r.error_kind, r.error, r.attempts);
    return j;
  }
  j["status"] = "ok";
  if (r.has_estimate) {
    j["sojourn"] = r.est_sojourn;
    j["mean_tasks"] = r.est_mean_tasks;
    j["residual"] = r.est_residual;
    j["rhs_evals"] = r.est_rhs_evals;
    if (!r.est_tail.empty()) {
      auto tail = util::Json::array();
      for (const double v : r.est_tail) tail.push_back(v);
      j["tail"] = std::move(tail);
    }
  }
  if (r.has_sim) {
    auto sim = util::Json::object();
    sim["sojourn"] = r.sim_sojourn.mean;
    sim["half_width"] = r.sim_sojourn.half_width;
    sim["events"] = r.events;
    j["sim"] = std::move(sim);
  }
  j["cache_hit"] = r.cache_hit;
  return j;
}

util::Json done_response(const std::string& id, std::size_t points,
                         std::size_t ok, std::size_t cache_hits,
                         std::size_t failed, bool was_cancelled,
                         double wall_seconds) {
  auto j = util::Json::object();
  j["type"] = "done";
  j["id"] = id;
  j["points"] = points;
  j["ok"] = ok;
  j["cache_hits"] = cache_hits;
  j["failed"] = failed;
  j["cancelled"] = was_cancelled;
  j["wall_seconds"] = wall_seconds;
  return j;
}

util::Json error_response(const std::string& id,
                          const util::Failure& failure) {
  auto j = util::Json::object();
  j["type"] = "error";
  j["id"] = id;
  auto err = util::Json::object();
  err["kind"] = util::to_string(failure.kind);
  err["message"] = failure.message;
  if (!failure.context.empty()) err["context"] = failure.context;
  j["error"] = std::move(err);
  return j;
}

util::Json rejected_response(const std::string& id, const std::string& reason,
                             std::size_t in_flight, std::size_t queued) {
  auto j = util::Json::object();
  j["type"] = "rejected";
  j["id"] = id;
  j["reason"] = reason;
  j["in_flight"] = in_flight;
  j["queued"] = queued;
  return j;
}

}  // namespace lsm::serve
