#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/failure.hpp"

namespace lsm::serve {

namespace {

/// Requests longer than this are answered with an error and the
/// connection closed — a runaway sender must not buffer unboundedly.
constexpr std::size_t kMaxLineBytes = 1 << 20;

[[noreturn]] void io_failure(const std::string& what) {
  util::Failure f;
  f.kind = util::FailureKind::Io;
  f.message = what + ": " + std::strerror(errno);
  throw util::FailureError(std::move(f));
}

int make_listener(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    util::Failure f;
    f.kind = util::FailureKind::InvalidArgument;
    f.message = "socket path must be 1.." +
                std::to_string(sizeof(addr.sun_path) - 1) +
                " bytes: '" + path + "'";
    throw util::FailureError(std::move(f));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) io_failure("socket(" + path + ")");
  // A stale socket file from a crashed daemon would make bind fail.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    io_failure("bind(" + path + ")");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    ::unlink(path.c_str());
    io_failure("listen(" + path + ")");
  }
  return fd;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

bool Server::Connection::write_line(const util::Json& line) {
  if (dead.load(std::memory_order_relaxed)) return false;
  std::string bytes = line.dump();
  bytes.push_back('\n');

  std::lock_guard<std::mutex> lock(write_mutex);
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a vanished client surfaces as EPIPE, not SIGPIPE.
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      dead.store(true, std::memory_order_relaxed);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  service_ = std::make_unique<SweepService>(opts_.service);
  listen_fd_ = make_listener(opts_.socket_path, opts_.backlog);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() {
  request_shutdown();
  wait();
}

void Server::request_shutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;
  // Stop admitting new requests; accept_loop notices via shutting_down_
  // once its poll wakes. shutdown(2) on the listener wakes a blocked
  // accept without racing the fd's lifetime (close happens in wait()).
  service_->begin_drain();
  ::shutdown(listen_fd_.load(std::memory_order_relaxed), SHUT_RDWR);
}

void Server::wait() {
  // Block until someone (a shutdown verb, the daemon's signal watcher,
  // or our destructor) requests shutdown.
  while (!shutting_down_.load(std::memory_order_acquire)) {
    // events=0: wake on error/hangup only
    pollfd p{listen_fd_.load(std::memory_order_relaxed), 0, 0};
    ::poll(&p, 1, 200);
  }
  // First caller runs the teardown; concurrent callers block on the
  // once_flag until it completes.
  std::call_once(teardown_once_, [this] {
    // 1. Finish every admitted request (their response lines still flow).
    service_->drain();
    // 2. Tear down the listener. The accept thread may briefly take
    // mutex_ to register a final connection, so mutex_ must not be held
    // across this join.
    if (accept_thread_.joinable()) accept_thread_.join();
    ::close(listen_fd_.load(std::memory_order_relaxed));
    listen_fd_.store(-1, std::memory_order_relaxed);
    // 3. Wake sessions blocked in read; their clients have been answered.
    std::vector<std::pair<std::thread, std::shared_ptr<Connection>>> sessions;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sessions.swap(sessions_);
    }
    for (auto& [thread, conn] : sessions) {
      ::shutdown(conn->fd, SHUT_RD);
    }
    for (auto& [thread, conn] : sessions) {
      if (thread.joinable()) thread.join();
    }
    // 4. Join the dispatcher + solver threads.
    service_.reset();
    ::unlink(opts_.socket_path.c_str());
  });
}

void Server::accept_loop() {
  for (;;) {
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_relaxed), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or irrecoverable): stop accepting
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.emplace_back(
        std::thread([this, conn] { session(conn); }), conn);
  }
}

void Server::session(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // client closed (or shutdown woke us): done
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      try {
        if (!dispatch(conn, parse_request(line))) return;
      } catch (const util::FailureError& e) {
        // Malformed request: structured error, connection stays up.
        conn->write_line(
            error_response(e.failure().context, e.failure()));
      }
    }
    buffer.erase(0, start);

    if (buffer.size() > kMaxLineBytes) {
      util::Failure f;
      f.kind = util::FailureKind::InvalidArgument;
      f.message = "request line exceeds " +
                  std::to_string(kMaxLineBytes) + " bytes";
      conn->write_line(error_response("", f));
      return;
    }
  }
}

bool Server::dispatch(const std::shared_ptr<Connection>& conn, Request req) {
  switch (req.verb) {
    case Verb::Sweep:
    case Verb::Estimate: {
      // The emit closure keeps the connection alive for as long as the
      // request streams, even if this session thread exits first.
      service_->submit(std::move(req),
                       [conn](const util::Json& line) {
                         return conn->write_line(line);
                       });
      return true;
    }
    case Verb::Status: {
      util::Json j = service_->status();
      if (!req.id.empty()) j["id"] = req.id;
      conn->write_line(j);
      return true;
    }
    case Verb::Cancel: {
      const bool found = service_->cancel(req.target);
      auto j = util::Json::object();
      j["type"] = "cancelled";
      if (!req.id.empty()) j["id"] = req.id;
      j["target"] = req.target;
      j["found"] = found;
      conn->write_line(j);
      return true;
    }
    case Verb::Shutdown: {
      auto j = util::Json::object();
      j["type"] = "shutting_down";
      if (!req.id.empty()) j["id"] = req.id;
      conn->write_line(j);
      // Non-blocking: the drain + teardown runs in wait(); this session
      // thread must not join itself.
      request_shutdown();
      return false;
    }
  }
  return true;
}

}  // namespace lsm::serve
