// lsm_serve: always-on sweep daemon over a Unix-domain socket.
//
//   ./lsm_serve --socket=/tmp/lsm.sock [--threads=N] [--max-inflight=2]
//               [--max-queued=8] [--cache-dir=DIR] [--retries=N]
//
// Speaks the newline-delimited JSON protocol documented in
// docs/SERVING.md. Runs until a client sends the shutdown verb or the
// process receives SIGINT/SIGTERM; either way in-flight requests drain
// before exit. Prints one "listening on <path>" line to stdout once the
// socket is ready (scripts wait for it), and a final status summary on
// shutdown.
#include <csignal>
#include <iostream>

#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/failure.hpp"

int main(int argc, char** argv) {
  const lsm::util::Args args(argc, argv);
  if (args.flag("help")) {
    std::cout << "usage: lsm_serve --socket=PATH [--threads=N] "
                 "[--max-inflight=2] [--max-queued=8] [--cache-dir=DIR] "
                 "[--retries=N]\n";
    return 0;
  }

  lsm::serve::ServerOptions opts;
  opts.socket_path = args.get("socket", std::string("/tmp/lsm-serve.sock"));
  opts.service.solver_threads =
      static_cast<unsigned>(std::max(args.get("threads", 0L), 0L));
  opts.service.max_in_flight =
      static_cast<std::size_t>(std::max(args.get("max-inflight", 2L), 1L));
  opts.service.max_queued =
      static_cast<std::size_t>(std::max(args.get("max-queued", 8L), 0L));
  opts.service.cache_dir =
      args.get("cache-dir", lsm::exp::ResultCache::default_dir());
  opts.service.retry.max_attempts = static_cast<std::size_t>(std::max(
      args.get("retries",
               static_cast<long>(opts.service.retry.max_attempts)),
      1L));

  try {
    // SIGINT/SIGTERM are blocked before any thread exists (threads
    // inherit the mask), then handled synchronously by a watcher thread
    // so shutdown can take mutexes — signal handlers cannot.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    lsm::serve::Server server(std::move(opts));
    std::thread watcher([&server, &signals] {
      int sig = 0;
      sigwait(&signals, &sig);
      server.request_shutdown();
    });

    std::cout << "listening on " << server.socket_path() << std::endl;
    server.wait();

    // If shutdown came from a client verb the watcher is still parked in
    // sigwait; a self-directed SIGTERM (blocked, so only sigwait sees
    // it) releases it.
    pthread_kill(watcher.native_handle(), SIGTERM);
    watcher.join();
    std::cout << "lsm_serve: drained, exiting" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "lsm_serve: " << e.what() << "\n";
    return 1;
  }
}
