// Request/response vocabulary of the lsm_serve line protocol.
//
// The daemon speaks newline-delimited JSON over a Unix-domain stream
// socket: every request is one JSON object on one line, every response
// line is one JSON object tagged with a "type". A sweep/estimate request
// streams one "point" line per completed λ-point (in λ order) followed
// by a terminal "done" summary line; every other verb answers with a
// single line. Malformed input of any shape — bad JSON, unknown verbs,
// unknown models, non-monotone grids — is answered with a structured
// "error" line carrying the util::Failure taxonomy, never with a dropped
// connection or a crash. docs/SERVING.md holds the full grammar with
// example sessions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exp/result.hpp"
#include "util/failure.hpp"
#include "util/json.hpp"

namespace lsm::serve {

enum class Verb {
  Sweep,     ///< solve a λ grid, streaming a point line per λ
  Estimate,  ///< single-λ convenience: one point line + done
  Status,    ///< daemon counters (admission, cache, totals)
  Cancel,    ///< cancel an in-flight or queued request by id
  Shutdown,  ///< drain in-flight requests, then exit
};

[[nodiscard]] const char* to_string(Verb verb) noexcept;

/// One parsed, validated client request.
struct Request {
  Verb verb = Verb::Status;
  /// Client-chosen token echoed in every response line of this request.
  /// Required for sweep/estimate (it keys cancellation); optional
  /// elsewhere. Also used as the grid-entry label, so fault-injection
  /// contexts are per-request ("<id>@<lambda>/e") while cache keys —
  /// which never include the label — still dedupe across clients.
  std::string id;

  // sweep / estimate:
  std::string model;
  core::ModelParams params;
  std::vector<double> lambdas;  ///< strictly monotone; size 1 for estimate
  std::size_t tail_limit = 0;
  bool warm = true;  ///< chain the grid through warm-started continuation
  /// Per-request solver budgets (0 = unlimited), threaded into every
  /// point's solve; exhaustion surfaces as a per-point error payload
  /// with kind "solver-budget".
  std::size_t max_rhs_evals = 0;
  double max_wall_seconds = 0.0;

  // cancel:
  std::string target;  ///< id of the request to cancel
};

/// Parses and validates one request line. Throws util::FailureError with
/// FailureKind::InvalidArgument describing the first problem: JSON syntax
/// errors, missing/mistyped fields, unknown verbs, unknown models,
/// parameters the model rejects, or a non-monotone λ grid. The failure
/// context carries the request id when one could be extracted, so the
/// error response still routes to the right client request.
[[nodiscard]] Request parse_request(const std::string& line);

// Response writers. Every line is a compact single-line JSON object with
// "type" first and the request id echoed as "id"; dump() + "\n" is the
// wire form.

/// One completed λ-point: sojourn/mean_tasks/residual/rhs_evals and
/// cache provenance on success, or an error{kind,message,attempts}
/// payload when the point failed. Deliberately timing-free, so two runs
/// producing identical results stream byte-identical point lines.
[[nodiscard]] util::Json point_response(const std::string& id,
                                        const exp::JobResult& r);

/// Terminal summary of a sweep/estimate: point counts must add up
/// (points == ok + failed; cache_hits <= ok).
[[nodiscard]] util::Json done_response(const std::string& id,
                                       std::size_t points, std::size_t ok,
                                       std::size_t cache_hits,
                                       std::size_t failed, bool was_cancelled,
                                       double wall_seconds);

/// Structured failure line (request-level, not per-point).
[[nodiscard]] util::Json error_response(const std::string& id,
                                        const util::Failure& failure);

/// Admission-control refusal: the in-flight + queue bound is hit (or the
/// daemon is draining for shutdown).
[[nodiscard]] util::Json rejected_response(const std::string& id,
                                           const std::string& reason,
                                           std::size_t in_flight,
                                           std::size_t queued);

}  // namespace lsm::serve
