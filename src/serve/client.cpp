#include "serve/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/failure.hpp"

namespace lsm::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void io_failure(std::string message) {
  util::Failure f;
  f.kind = util::FailureKind::Io;
  f.message = std::move(message);
  f.retryable = true;
  throw util::FailureError(std::move(f));
}

using TimePoint =
    std::chrono::time_point<Clock, std::chrono::duration<double>>;

double seconds_until(TimePoint deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

}  // namespace

Client Client::connect(const std::string& socket_path,
                       double timeout_seconds) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    io_failure("socket path too long: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) io_failure(std::string("socket: ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return Client(fd);
    }
    const int err = errno;
    ::close(fd);
    // The daemon may still be starting: ENOENT before bind, ECONNREFUSED
    // between bind and listen. Anything else is not worth retrying.
    if ((err != ENOENT && err != ECONNREFUSED) ||
        Clock::now() >= deadline) {
      io_failure("connect(" + socket_path + "): " + std::strerror(err));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      pending_(std::move(other.pending_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const util::Json& request) {
  send_raw(request.dump() + "\n");
}

void Client::send_raw(const std::string& bytes) {
  if (fd_ < 0) io_failure("send on a closed client");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_failure(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

util::Json Client::read_line(double timeout_seconds) {
  if (fd_ < 0) io_failure("read on a closed client");
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return util::Json::parse(line);
    }

    const double remaining = seconds_until(deadline);
    if (remaining <= 0.0) {
      io_failure("timed out waiting for a response line");
    }
    pollfd p{fd_, POLLIN, 0};
    const int rc =
        ::poll(&p, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      io_failure(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;  // deadline re-checked at loop top

    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      io_failure(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) io_failure("daemon closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::vector<util::Json> Client::collect(const std::string& id,
                                        double timeout_seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_seconds);
  std::vector<util::Json> lines;
  // Only "point" lines continue a stream; every other type (done, error,
  // rejected, cancelled, status, shutting_down) answers its request.
  const auto is_terminal = [](const util::Json& line) {
    return line.at("type").as_string() != "point";
  };

  // Lines of this request already read past by an earlier collect().
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].contains("id") &&
        pending_[i].at("id").as_string() == id) {
      lines.push_back(std::move(pending_[i]));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      if (is_terminal(lines.back())) return lines;
    } else {
      ++i;
    }
  }

  for (;;) {
    util::Json line = read_line(std::max(seconds_until(deadline), 0.0));
    if (!line.contains("id") || line.at("id").as_string() != id) {
      pending_.push_back(std::move(line));
      continue;
    }
    lines.push_back(std::move(line));
    if (is_terminal(lines.back())) return lines;
  }
}

}  // namespace lsm::serve
