#include "serve/service.hpp"

#include <chrono>
#include <utility>

#include "exp/spec.hpp"
#include "exp/sweep.hpp"
#include "util/env.hpp"
#include "util/failure.hpp"

namespace lsm::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

const char* kCancelledSlug = util::to_string(util::FailureKind::Cancelled);

}  // namespace

SweepService::SweepService(ServiceOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.solver_threads > 0 ? opts_.solver_threads
                                     : util::worker_threads()),
      cache_(opts_.cache_dir) {
  const std::size_t dispatchers = std::max<std::size_t>(opts_.max_in_flight, 1);
  opts_.max_in_flight = dispatchers;
  workers_.reserve(dispatchers);
  for (std::size_t i = 0; i < dispatchers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool SweepService::submit(Request req, Emit emit) {
  auto active = std::make_shared<Active>();
  active->req = std::move(req);
  active->emit = std::move(emit);

  util::Json rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stopping_) {
      ++rejected_;
      rejection = rejected_response(active->req.id, "shutting down",
                                    in_flight_, queue_.size());
    } else if (in_flight_ >= opts_.max_in_flight &&
               queue_.size() >= opts_.max_queued) {
      ++rejected_;
      rejection =
          rejected_response(active->req.id, "admission limit reached",
                            in_flight_, queue_.size());
    } else {
      queue_.push_back(active);
    }
  }
  if (!rejection.is_null()) {
    // Emitted outside the lock: the sink writes to a socket.
    active->emit(rejection);
    return false;
  }
  work_cv_.notify_one();
  return true;
}

bool SweepService::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& a : running_) {
    if (a->req.id == id && !a->cancel.load(std::memory_order_relaxed)) {
      a->cancel.store(true, std::memory_order_relaxed);
      ++cancelled_;
      return true;
    }
  }
  for (const auto& a : queue_) {
    if (a->req.id == id && !a->cancel.load(std::memory_order_relaxed)) {
      a->cancel.store(true, std::memory_order_relaxed);
      ++cancelled_;
      return true;
    }
  }
  return false;
}

util::Json SweepService::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto j = util::Json::object();
  j["type"] = "status";
  auto admission = util::Json::object();
  admission["in_flight"] = in_flight_;
  admission["queued"] = queue_.size();
  admission["max_in_flight"] = opts_.max_in_flight;
  admission["max_queued"] = opts_.max_queued;
  admission["draining"] = draining_;
  j["admission"] = std::move(admission);
  auto totals = util::Json::object();
  totals["completed"] = completed_;
  totals["rejected"] = rejected_;
  totals["cancelled"] = cancelled_;
  totals["points"] = points_streamed_;
  totals["point_failures"] = point_failures_;
  j["totals"] = std::move(totals);
  auto cache = util::Json::object();
  cache["hits"] = cache_hits_;
  cache["misses"] = cache_misses_;
  cache["quarantined"] = cache_.quarantined();
  cache["dir"] = cache_.dir();
  j["cache"] = std::move(cache);
  j["solver_threads"] = static_cast<std::size_t>(pool_.size());
  return j;
}

void SweepService::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

void SweepService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock,
                 [this] { return queue_.empty() && in_flight_ == 0; });
}

void SweepService::worker_loop() {
  for (;;) {
    std::shared_ptr<Active> active;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to run
      active = queue_.front();
      queue_.pop_front();
      ++in_flight_;
      running_.push_back(active);
    }

    run_request(*active);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      for (std::size_t i = 0; i < running_.size(); ++i) {
        if (running_[i] == active) {
          running_.erase(running_.begin() +
                         static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    // The Active (and with it the emit closure holding the connection
    // alive) is released before the idle notification, so a drained
    // service holds no connection references.
    active.reset();
    drain_cv_.notify_all();
    work_cv_.notify_one();
  }
}

void SweepService::run_request(Active& active) {
  const auto t0 = std::chrono::steady_clock::now();
  const Request& req = active.req;
  if (opts_.on_start) opts_.on_start(req);

  // Per-request stream accounting; folded into the lifetime totals once
  // the request finishes.
  std::size_t streamed = 0;
  std::size_t ok = 0;
  std::size_t hits = 0;
  std::size_t failed = 0;

  // Folded before the terminal line goes out, so a client that reads its
  // done line and immediately asks for status sees this request counted.
  const auto finalize = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    points_streamed_ += streamed;
    point_failures_ += failed;
    cache_hits_ += hits;
    cache_misses_ += ok - hits;
  };

  try {
    exp::ExperimentSpec spec;
    spec.name = "";  // serve requests emit no artifacts
    spec.lambdas = req.lambdas;
    spec.outputs.simulate = false;
    spec.outputs.fixed_point = true;
    spec.outputs.tail_limit = req.tail_limit;
    spec.max_rhs_evals = req.max_rhs_evals;
    spec.max_wall_seconds = req.max_wall_seconds;
    {
      exp::GridEntry entry;
      // The label is the request id: it feeds fault-injection contexts
      // and failure messages but never the content hash, so two clients
      // requesting the same configuration share cache entries.
      entry.label = req.id;
      entry.model = req.model;
      entry.params = req.params;
      entry.simulate = false;
      spec.add(std::move(entry));
    }

    exp::SweepOptions opts;
    opts.pool = &pool_;
    opts.cache = &cache_;
    opts.cache_dir = "";
    opts.artifact_dir = "";
    opts.warm = req.warm;
    opts.on_failure = exp::OnFailure::Report;
    opts.retry = opts_.retry;
    opts.cancel = &active.cancel;
    opts.on_point = [&](std::size_t index, const exp::JobResult& r) {
      if (r.error_kind == kCancelledSlug) {
        // Skipped by cancellation: no point line — the terminal summary
        // carries cancelled: true instead.
        if (opts_.on_point_hook) opts_.on_point_hook(req, index);
        return;
      }
      ++streamed;
      if (r.status == exp::JobStatus::Failed) {
        ++failed;
      } else {
        ++ok;
        if (r.cache_hit) ++hits;
      }
      if (!active.emit(point_response(req.id, r))) {
        // Client gone: cancel the remainder so a dead connection cannot
        // pin this admission slot for the rest of the grid.
        active.cancel.store(true, std::memory_order_relaxed);
      }
      if (opts_.on_point_hook) opts_.on_point_hook(req, index);
    };

    exp::SweepRunner runner(opts);
    (void)runner.run(spec);

    const bool was_cancelled =
        active.cancel.load(std::memory_order_relaxed);
    finalize();
    active.emit(done_response(req.id, streamed, ok, hits, failed,
                              was_cancelled, seconds_since(t0)));
  } catch (const std::exception& e) {
    // Request-level failure (spec rejected, abort-mode solver error, …):
    // one structured error line instead of a terminal summary.
    finalize();
    active.emit(error_response(req.id, util::classify_exception(e)));
  }
}

}  // namespace lsm::serve
