// SweepService: the daemon's execution core, independent of any socket.
//
// Requests admitted by submit() execute on a bounded set of dispatcher
// threads (one per in-flight slot), each driving an exp::SweepRunner
// over ONE process-wide solver pool and ONE process-wide content-hash
// result cache — so a second client asking for an overlapping λ-grid
// gets cache hits and warm-chained solves instead of cold ones, and the
// cache hit/miss/quarantine counters aggregate across every client.
//
// Admission control is two bounds: max_in_flight requests executing plus
// max_queued admitted-but-waiting; anything beyond is answered with an
// explicit "rejected" line, never silently dropped or unboundedly
// buffered. Failures inside a request follow the PR 5 degrade-don't-die
// machinery (OnFailure::Report + bounded retries): a failed λ-point
// surfaces as a per-point error{kind,message,attempts} payload while the
// rest of the request — and every other in-flight request — completes
// unaffected.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/cache.hpp"
#include "exp/runner.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace lsm::serve {

struct ServiceOptions {
  /// Solver pool width shared by every request (0 = worker_threads()).
  unsigned solver_threads = 0;
  /// Requests executing concurrently (dispatcher threads).
  std::size_t max_in_flight = 2;
  /// Requests admitted but waiting for a dispatcher.
  std::size_t max_queued = 8;
  /// Process-wide result cache directory ("" disables caching — every
  /// request then solves cold and nothing is shared).
  std::string cache_dir = exp::ResultCache::default_dir();
  /// Retry policy for retryable point failures (transient I/O, injected
  /// faults), applied per point via exp::detail::run_isolated.
  exp::RetryPolicy retry{};

  // Test hooks (keep null in production). on_start runs on the
  // dispatcher thread after the request leaves the queue and before any
  // solving — a test can block here to hold an admission slot open
  // deterministically. on_point_hook runs after each point line has been
  // emitted (or suppressed, for cancelled points) — a test can gate here
  // to freeze a stream mid-flight.
  std::function<void(const Request&)> on_start;
  std::function<void(const Request&, std::size_t index)> on_point_hook;
};

class SweepService {
 public:
  /// Response sink for one request: called with each response line's
  /// JSON tree, from a dispatcher or pool thread. Returns false when the
  /// line could not be delivered (client gone) — the service then
  /// cancels the rest of the request so a dead client cannot pin an
  /// admission slot.
  using Emit = std::function<bool(const util::Json& line)>;

  explicit SweepService(ServiceOptions opts);
  /// Drains like the destructor of a Server-owned service: stops
  /// accepting, finishes queued + in-flight requests, joins dispatchers.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Admits `req` (sweep/estimate only) or rejects it. On admission the
  /// request's response lines stream through `emit` asynchronously and
  /// submit returns true; on rejection a "rejected" line is emitted
  /// synchronously and submit returns false.
  bool submit(Request req, Emit emit);

  /// Flags the queued or in-flight request whose id matches for
  /// cooperative cancellation. Cancellation lands between λ-points: the
  /// stream stops promptly, a terminal done line (cancelled: true) is
  /// still emitted, and the admission slot frees. False when no live
  /// request has that id.
  bool cancel(const std::string& id);

  /// Daemon counters as a "status"-typed response line (admission gauges,
  /// lifetime totals, process-wide cache counters).
  [[nodiscard]] util::Json status() const;

  /// Stops admitting (submit answers "rejected: shutting down").
  void begin_drain();
  /// Blocks until the queue is empty and nothing is in flight.
  void drain();

 private:
  /// One admitted request: the parsed form, its response sink, and the
  /// cancel flag shared with the sweep's cooperative checks.
  struct Active {
    Request req;
    Emit emit;
    std::atomic<bool> cancel{false};
  };

  void worker_loop();
  void run_request(Active& active);

  ServiceOptions opts_;
  par::ThreadPool pool_;
  exp::ResultCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< dispatchers wait for queue items
  std::condition_variable drain_cv_;  ///< drain() waits for full idle
  std::deque<std::shared_ptr<Active>> queue_;
  std::vector<std::shared_ptr<Active>> running_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool draining_ = false;
  std::size_t in_flight_ = 0;

  // Lifetime totals (under mutex_).
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t points_streamed_ = 0;
  std::uint64_t point_failures_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace lsm::serve
