// Unix-domain socket front end of the lsm_serve daemon.
//
// Server binds a SOCK_STREAM socket at a filesystem path, accepts
// connections on a dedicated thread, and runs one session thread per
// client. A session reads newline-delimited request lines, answers
// status/cancel/shutdown synchronously, and hands sweep/estimate
// requests to the shared SweepService, whose response lines are written
// back through a per-connection mutex (so a streaming sweep and a
// concurrent status reply never interleave bytes). A client may pipeline
// further requests while a sweep streams — every response line carries
// the request id, so multiplexed streams stay attributable.
//
// Shutdown ordering (request_shutdown() or destructor): stop admitting,
// drain queued + in-flight requests, close the listener, then shut down
// remaining connections and join every session thread. A client that
// disconnects mid-stream never wedges a worker: writes to the dead
// socket fail, which cancels the rest of that request (see
// SweepService::Emit).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/service.hpp"

namespace lsm::serve {

struct ServerOptions {
  /// Filesystem path of the listening socket. The path is unlinked
  /// before bind (stale sockets from a crashed daemon) and on shutdown.
  std::string socket_path;
  ServiceOptions service{};
  /// Pending-connection backlog passed to listen(2).
  int backlog = 16;
};

class Server {
 public:
  /// Binds and starts accepting. Throws util::FailureError (Io) when the
  /// socket cannot be created, bound, or listened on.
  explicit Server(ServerOptions opts);
  /// Equivalent to request_shutdown() + wait().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return opts_.socket_path;
  }
  [[nodiscard]] SweepService& service() noexcept { return *service_; }

  /// Begins the drain-then-teardown sequence described above. Idempotent
  /// and callable from any thread (sessions call it for the shutdown
  /// verb; the daemon main calls it from its signal watcher).
  void request_shutdown();

  /// Blocks until the server has fully shut down (listener closed, all
  /// sessions joined). Returns immediately if already down.
  void wait();

 private:
  /// One accepted client connection. Sessions and streaming emits share
  /// it via shared_ptr: the fd outlives the session thread for exactly
  /// as long as some in-flight request still holds an emit closure.
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    /// Set on write failure or session exit; emits return false after.
    std::atomic<bool> dead{false};

    ~Connection();
    /// Writes dump(line) + "\n" atomically w.r.t. other writers. Returns
    /// false (and marks the connection dead) when the client is gone.
    bool write_line(const util::Json& line);
  };

  void accept_loop();
  void session(std::shared_ptr<Connection> conn);
  /// Dispatches one parsed request; returns false when the session
  /// should end (shutdown verb).
  bool dispatch(const std::shared_ptr<Connection>& conn, Request req);

  ServerOptions opts_;
  std::unique_ptr<SweepService> service_;
  // Atomic: a session thread's shutdown verb reads it (to wake accept)
  // while wait()'s teardown writes it; both fds stay valid until the
  // teardown's close, which runs after every session thread is joined.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;

  std::mutex mutex_;  ///< guards sessions_
  std::vector<std::pair<std::thread, std::shared_ptr<Connection>>> sessions_;
  std::atomic<bool> shutting_down_{false};
  std::once_flag teardown_once_;
};

}  // namespace lsm::serve
