// Small blocking client for the lsm_serve line protocol, shared by the
// lsm_serve_client binary, the test suites, and scripts/check.sh. One
// Client is one connection; every read has a deadline so a wedged (or
// killed) daemon surfaces as a timeout failure, never a hang.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace lsm::serve {

class Client {
 public:
  /// Connects to the daemon's socket, retrying (the daemon may still be
  /// binding) until `timeout_seconds` elapses. Throws util::FailureError
  /// (Io) when the deadline passes without a connection.
  static Client connect(const std::string& socket_path,
                        double timeout_seconds = 5.0);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request object as a single protocol line.
  void send(const util::Json& request);
  /// Sends raw bytes verbatim (malformed-input tests). The caller is
  /// responsible for the trailing newline.
  void send_raw(const std::string& bytes);

  /// Reads the next response line and parses it. Throws util::FailureError
  /// (Io) on timeout or when the daemon closed the connection.
  [[nodiscard]] util::Json read_line(double timeout_seconds = 30.0);

  /// Reads lines until the terminal line of request `id` (type done,
  /// error, or rejected with a matching id) and returns every line that
  /// carried that id, terminal line last. Lines of other requests
  /// multiplexed onto this connection are stashed and returned by their
  /// own collect() call later. The timeout covers the whole collection.
  [[nodiscard]] std::vector<util::Json> collect(const std::string& id,
                                                double timeout_seconds = 60.0);

  /// Hard-closes the connection (disconnect-mid-stream tests).
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
  /// Lines read by collect() that belonged to a different request.
  std::vector<util::Json> pending_;
};

}  // namespace lsm::serve
