// lsm_serve_client: one-shot client for the lsm_serve daemon, used by
// scripts/check.sh and handy for manual poking.
//
//   ./lsm_serve_client --socket=PATH sweep --id=r1 --model=simple
//       --lambdas=0.5,0.7,0.9 [--<param>=value] [--tail-limit=N]
//       [--no-warm] [--max-evals=N] [--max-seconds=S]
//   ./lsm_serve_client --socket=PATH estimate --id=r1 --model=... --lambdas=0.9
//   ./lsm_serve_client --socket=PATH status | cancel --target=r1 | shutdown
//   ./lsm_serve_client --socket=PATH raw --line='{"verb":"status"}'
//
// Every response line is echoed to stdout. Exit 0 when the request ends
// in "done" (or a single-line verb answered), 1 on error/rejected/
// timeout, 2 when the sweep finished but some points failed.
#include <iostream>
#include <sstream>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/failure.hpp"
#include "util/json.hpp"

namespace {

const char* kUsage =
    "usage: lsm_serve_client --socket=PATH "
    "<sweep|estimate|status|cancel|shutdown|raw> [flags]\n";

/// Flags consumed by the client itself; everything else is forwarded to
/// the daemon as a model parameter.
bool own_flag(const std::string& key) {
  return key == "socket" || key == "id" || key == "model" ||
         key == "lambdas" || key == "tail-limit" || key == "warm" ||
         key == "no-warm" || key == "max-evals" || key == "max-seconds" ||
         key == "target" || key == "line" || key == "timeout" ||
         key == "help";
}

std::vector<double> parse_lambdas(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const lsm::util::Args args(argc, argv);
  if (args.flag("help") || args.positional().empty()) {
    std::cout << kUsage;
    return args.flag("help") ? 0 : 1;
  }
  const std::string verb = args.positional().front();
  const std::string socket =
      args.get("socket", std::string("/tmp/lsm-serve.sock"));
  const double timeout = args.get("timeout", 60.0);

  try {
    auto client = lsm::serve::Client::connect(socket, timeout);

    if (verb == "raw") {
      client.send_raw(args.get("line", std::string()) + "\n");
      const auto line = client.read_line(timeout);
      std::cout << line.dump() << "\n";
      return line.contains("type") &&
                     line.at("type").as_string() == "error"
                 ? 1
                 : 0;
    }

    auto req = lsm::util::Json::object();
    req["verb"] = verb;
    const std::string id = args.get("id", std::string("cli"));
    req["id"] = id;

    if (verb == "sweep" || verb == "estimate") {
      req["model"] = args.get("model", std::string());
      auto grid = lsm::util::Json::array();
      for (const double l :
           parse_lambdas(args.get("lambdas", std::string()))) {
        grid.push_back(l);
      }
      req["lambdas"] = std::move(grid);
      if (args.has("tail-limit")) {
        req["tail_limit"] = args.get("tail-limit", 0L);
      }
      if (args.flag("no-warm")) req["warm"] = false;
      if (args.has("max-evals") || args.has("max-seconds")) {
        auto budget = lsm::util::Json::object();
        if (args.has("max-evals")) {
          budget["max_rhs_evals"] = args.get("max-evals", 0L);
        }
        if (args.has("max-seconds")) {
          budget["max_wall_seconds"] = args.get("max-seconds", 0.0);
        }
        req["budget"] = std::move(budget);
      }
      auto params = lsm::util::Json::object();
      for (const auto& key : args.keys()) {
        if (own_flag(key)) continue;
        const std::string text = args.get(key, std::string());
        // Numeric-looking values go over the wire as numbers; anything
        // else (service distribution specs like "hyperexp:...") as text.
        try {
          std::size_t used = 0;
          const double v = std::stod(text, &used);
          if (used == text.size()) {
            params[key] = v;
            continue;
          }
        } catch (const std::exception&) {
        }
        params[key] = text;
      }
      if (params.size() > 0) req["params"] = std::move(params);

      client.send(req);
      const auto lines = client.collect(id, timeout);
      for (const auto& line : lines) std::cout << line.dump() << "\n";
      const auto& last = lines.back();
      if (last.at("type").as_string() != "done") return 1;
      return last.at("failed").as_int() > 0 ? 2 : 0;
    }

    if (verb == "cancel") req["target"] = args.get("target", std::string());
    if (verb != "status" && verb != "cancel" && verb != "shutdown") {
      std::cerr << kUsage;
      return 1;
    }
    client.send(req);
    const auto line = client.read_line(timeout);
    std::cout << line.dump() << "\n";
    return line.contains("type") && line.at("type").as_string() == "error"
               ? 1
               : 0;
  } catch (const std::exception& e) {
    std::cerr << "lsm_serve_client: " << e.what() << "\n";
    return 1;
  }
}
