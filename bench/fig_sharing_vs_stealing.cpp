// Figure F10 (quantifying the introduction's motivation): work stealing vs
// sender-initiated work sharing, on BOTH axes that matter -- expected time
// in system and control-message traffic. "When all processors are busy,
// no attempts are made to migrate work": the stealing message rate
// (lambda - pi_2 per processor) vanishes as lambda -> 1 while the sharing
// rate (lambda pi_S) grows, and the response-time advantage flips to
// stealing exactly where messages get expensive.
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/threshold_ws.hpp"
#include "core/work_sharing.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header(
      "Fig F10: stealing vs sharing -- response time and message traffic", f);
  par::ThreadPool pool(util::worker_threads());

  util::Table table({"lambda", "steal E[T]", "share E[T]", "steal msg/s",
                     "share msg/s", "sim steal msg/s", "sim share msg/s"});
  for (double lambda : {0.10, 0.30, 0.50, 0.70, 0.90, 0.95, 0.99}) {
    core::SimpleWS steal(lambda);
    core::WorkSharingWS share(lambda, 2);
    const auto pi_steal = steal.analytic_fixed_point();
    const auto fp_share = core::solve_fixed_point(share);

    auto sim_rate = [&](const sim::StealPolicy& policy) {
      sim::SimConfig cfg;
      cfg.processors = 128;
      cfg.arrival_rate = lambda;
      cfg.policy = policy;
      cfg.horizon = f.horizon;
      cfg.warmup = f.warmup;
      cfg.seed = 42;
      const auto rep = sim::replicate(cfg, f.replications, pool);
      double acc = 0.0;
      for (const auto& r : rep.replications) acc += r.message_rate(128);
      return acc / static_cast<double>(rep.replications.size());
    };

    table.add_row(
        {util::Table::fmt(lambda, 2),
         util::Table::fmt(steal.analytic_sojourn()),
         util::Table::fmt(share.mean_sojourn(fp_share.state)),
         util::Table::fmt(core::stealing_message_rate(pi_steal), 4),
         util::Table::fmt(share.message_rate(fp_share.state), 4),
         util::Table::fmt(sim_rate(sim::StealPolicy::on_empty(2)), 4),
         util::Table::fmt(sim_rate(sim::StealPolicy::sharing(2)), 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading: stealing's traffic peaks at moderate load and "
               "vanishes near saturation (busy processors never probe); "
               "sharing's traffic grows with load exactly when the network "
               "can least afford it\n";
  return 0;
}
