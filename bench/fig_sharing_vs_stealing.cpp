// Figure F10 (quantifying the introduction's motivation): work stealing vs
// sender-initiated work sharing, on BOTH axes that matter -- expected time
// in system and control-message traffic. "When all processors are busy,
// no attempts are made to migrate work": the stealing message rate
// (s_1 - s_2 per processor) vanishes as lambda -> 1 while the sharing
// rate (lambda s_S) grows, and the response-time advantage flips to
// stealing exactly where messages get expensive.
//
// Runs through exp::SweepRunner: both policies. fixed points, simulations and
// message counters come out of one cached grid, with the estimate-side
// rates read off the stored fixed-point tail profiles.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header(
      "Fig F10: stealing vs sharing -- response time and message traffic", f);
  constexpr std::size_t kShareThreshold = 2;

  exp::ExperimentSpec spec;
  spec.name = "fig_sharing_vs_stealing";
  spec.fidelity = f;
  spec.lambdas = {0.10, 0.30, 0.50, 0.70, 0.90, 0.95, 0.99};
  spec.outputs.tail_limit = 4;  // enough for s_1 - s_2 and lambda * s_S
  {
    exp::GridEntry steal;
    steal.label = "steal";
    steal.model = "simple";
    steal.config.processors = 128;
    steal.config.policy = sim::StealPolicy::on_empty(2);
    spec.add(std::move(steal));
  }
  {
    exp::GridEntry share;
    share.label = "share";
    share.model = "sharing";
    share.params = {{"S", static_cast<double>(kShareThreshold)}};
    share.config.processors = 128;
    share.config.policy = sim::StealPolicy::sharing(kShareThreshold);
    spec.add(std::move(share));
  }

  const auto report = exp::SweepRunner().run(spec);

  util::Table table({"lambda", "steal E[T]", "share E[T]", "steal msg/s",
                     "share msg/s", "sim steal msg/s", "sim share msg/s"});
  for (const double lambda : spec.lambdas) {
    const auto& steal = report.at("steal", lambda);
    const auto& share = report.at("share", lambda);
    const double steal_rate = steal.est_tail[1] - steal.est_tail[2];
    const double share_rate = lambda * share.est_tail[kShareThreshold];
    table.add_row({util::Table::fmt(lambda, 2),
                   util::Table::fmt(steal.est_sojourn),
                   util::Table::fmt(share.est_sojourn),
                   util::Table::fmt(steal_rate, 4),
                   util::Table::fmt(share_rate, 4),
                   util::Table::fmt(steal.message_rate, 4),
                   util::Table::fmt(share.message_rate, 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading: stealing's traffic peaks at moderate load and "
               "vanishes near saturation (busy processors never probe); "
               "sharing's traffic grows with load exactly when the network "
               "can least afford it\n"
            << report.summary() << "\n";
  return 0;
}
