// Figure F2 (Section 4): trajectories of the L1 distance D(t) to the fixed
// point. In the Theorem 1 regime (pi_2 < 1/2) D must be non-increasing;
// at high load the theorem gives no guarantee but convergence still holds
// numerically, exactly as the paper reports.
#include <iostream>

#include "analysis/convergence.hpp"
#include "analysis/stability.hpp"
#include "bench_common.hpp"
#include "core/threshold_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F2: stability and convergence of D(t)", f);

  for (double lambda : {0.60, 0.95}) {
    core::SimpleWS model(lambda);
    const auto pi = model.analytic_fixed_point();
    std::cout << "lambda = " << lambda << "  (pi_2 = " << pi[2]
              << (analysis::theorem_stability_condition(pi)
                      ? " < 1/2: Theorem 1 applies)"
                      : " >= 1/2: beyond Theorem 1)")
              << "\n";

    const double duration = lambda < 0.9 ? 30.0 : 120.0;
    const auto from_empty = analysis::trace_l1_distance(
        model, model.empty_state(), pi, duration, duration / 12.0);
    const auto from_mm1 = analysis::trace_l1_distance(
        model, model.mm1_state(), pi, duration, duration / 12.0);

    util::Table table({"t", "D(t) from empty", "D(t) from M/M/1 tail"});
    for (std::size_t k = 0; k < from_empty.samples.size(); ++k) {
      table.add_row({util::Table::fmt(from_empty.samples[k].t, 1),
                     util::Table::fmt(from_empty.samples[k].l1, 6),
                     util::Table::fmt(from_mm1.samples[k].l1, 6)});
    }
    table.print(std::cout);
    std::cout << "max single-step increase: empty-start "
              << from_empty.max_increase << ", mm1-start "
              << from_mm1.max_increase << "\n";

    const auto starts = analysis::random_starts(model, 6, 2026);
    const auto report =
        analysis::check_convergence(model, starts, pi, 2000.0, 1e-6);
    std::cout << "random starts converged: " << report.converged << "/"
              << report.starts
              << " (worst final distance " << report.worst_final_distance
              << ")\n\n";
  }
  return 0;
}
