// Figure F11 (the content of Kurtz's theorem, visualized): the *transient
// trajectory* of a finite system tracks the ODE solution, not just its
// fixed point. A load shock -- half the machine starts with 12 tasks --
// arrives on top of lambda = 0.7 background traffic; we print tasks per
// processor and busy fraction over time, model vs n = 256 simulation,
// with and without stealing.
#include <iostream>

#include "bench_common.hpp"
#include "core/no_stealing.hpp"
#include "core/threshold_ws.hpp"
#include "ode/integrator.hpp"

namespace {

using namespace lsm;

/// Shock initial condition: fraction `frac` of processors hold `k` tasks.
ode::State shocked_state(const core::MeanFieldModel& model, double frac,
                         std::size_t k) {
  ode::State s(model.dimension(), 0.0);
  s[0] = 1.0;
  for (std::size_t i = 1; i <= k; ++i) s[i] = frac;
  return s;
}

/// Model trajectory sampled at exact multiples of dt (integration runs
/// segment by segment so sample times line up with the simulator's).
std::vector<sim::SimResult::TimelinePoint> model_timeline(
    const core::MeanFieldModel& model, ode::State s, double horizon,
    double dt) {
  std::vector<sim::SimResult::TimelinePoint> out;
  out.push_back({0.0, model.mean_tasks(s), s[1]});
  double t = 0.0;
  while (t < horizon) {
    const double target = std::min(t + dt, horizon);
    t = ode::integrate_adaptive(model, s, t, target, {});
    out.push_back({t, model.mean_tasks(s), s[1]});
  }
  return out;
}

}  // namespace

int main() {
  const auto f = bench::fidelity();
  bench::print_header(
      "Fig F11: shock response -- transient trajectory, model vs sim", f);
  par::ThreadPool pool(util::worker_threads());

  constexpr double kLambda = 0.7;
  constexpr std::size_t kShock = 12;
  constexpr double kHorizon = 40.0;
  constexpr double kDt = 2.0;

  core::ThresholdWS steal_model(kLambda, 2);
  core::NoStealing none_model(kLambda);
  const auto m_steal = model_timeline(
      steal_model, shocked_state(steal_model, 0.5, kShock), kHorizon, kDt);
  const auto m_none = model_timeline(
      none_model, shocked_state(none_model, 0.5, kShock), kHorizon, kDt);

  auto sim_timeline = [&](const sim::StealPolicy& policy) {
    sim::SimConfig cfg;
    cfg.processors = 256;
    cfg.arrival_rate = kLambda;
    cfg.policy = policy;
    cfg.initial_tasks = kShock;
    cfg.loaded_count = 128;
    cfg.horizon = kHorizon + 1.0;
    cfg.warmup = 0.0;
    cfg.timeline_dt = kDt;
    std::vector<sim::SimResult::TimelinePoint> acc;
    for (std::size_t rep = 0; rep < f.replications; ++rep) {
      cfg.seed = 42 + rep;
      const auto res = sim::simulate(cfg);
      if (acc.empty()) {
        acc = res.timeline;
      } else {
        for (std::size_t i = 0; i < acc.size() && i < res.timeline.size();
             ++i) {
          acc[i].mean_tasks += res.timeline[i].mean_tasks;
          acc[i].busy_fraction += res.timeline[i].busy_fraction;
        }
      }
    }
    for (auto& p : acc) {
      p.mean_tasks /= static_cast<double>(f.replications);
      p.busy_fraction /= static_cast<double>(f.replications);
    }
    return acc;
  };

  const auto s_steal = sim_timeline(lsm::sim::StealPolicy::on_empty(2));
  const auto s_none = sim_timeline(lsm::sim::StealPolicy::none());

  lsm::util::Table table({"t", "steal model E[N]", "steal sim E[N]",
                          "steal model busy", "steal sim busy",
                          "none model E[N]", "none sim E[N]"});
  const std::size_t rows = std::min({m_steal.size(), s_steal.size(),
                                     m_none.size(), s_none.size()});
  for (std::size_t i = 0; i < rows; ++i) {
    table.add_row({lsm::util::Table::fmt(m_steal[i].t, 1),
                   lsm::util::Table::fmt(m_steal[i].mean_tasks),
                   lsm::util::Table::fmt(s_steal[i].mean_tasks),
                   lsm::util::Table::fmt(m_steal[i].busy_fraction),
                   lsm::util::Table::fmt(s_steal[i].busy_fraction),
                   lsm::util::Table::fmt(m_none[i].mean_tasks),
                   lsm::util::Table::fmt(s_none[i].mean_tasks)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the n = 256 trajectory rides the deterministic "
               "limit through the whole transient; stealing switches the "
               "idle half of the machine on within a couple of service "
               "times and drains the shock far sooner than independent "
               "queues do\n";
  return 0;
}
