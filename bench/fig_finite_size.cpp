// Figure F12: finite-n convergence RATE to the mean-field limit.
//
// Kurtz-style mean-field results say E[T](n) -> E[T](inf) as n -> inf;
// Stein-method refinements (Ying, arXiv:1605.06581) bound the
// approximation error between O(1/sqrt(n)) and O(1/n). This bench
// measures the gap |E[T](n) - E[T](inf)| on a log-spaced n grid up to
// 2^20 processors, with E[T](inf) the simple-WS fixed-point value, and
// fits the decay exponent beta of gap ~ C * n^(-beta) per lambda.
//
// Statistics: each point's standard error is sigma/sqrt(R) across
// replications. The per-point simulated horizon SHRINKS as n grows (a
// constant processor-seconds budget), so the cost per point stays flat
// while the gap falls like n^(-beta) — beyond a crossover n the gap is
// indistinguishable from noise. Those points are reported but excluded
// from the fit (the |gap| > 2 se gate in fit_decay_exponent); fitting
// them would bias beta toward zero. Large-n rows still earn their keep:
// they demonstrate the sharded SoA engine running 10^5-10^6 processors
// and pin that the measured mean is statistically indistinguishable from
// the mean-field limit there.
//
// Env knobs:
//   LSM_FS_FULL=1   extend the n grid to 2^20 (default tops out at 2^14)
//   LSM_FS_SMOKE=1  tiny grid {128, 1024, 100000} at lambda = 0.9 with a
//                   short horizon — the large-n smoke leg scripts/check.sh
//                   runs under an armed fault injector
//   LSM_PAPER=1     paper fidelity (more replications, bigger budget)
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/finite_size.hpp"
#include "bench_common.hpp"
#include "core/threshold_ws.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "util/statistics.hpp"

namespace {

using namespace lsm;

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

struct Point {
  std::size_t n = 0;
  double lambda = 0.0;
  double mean = 0.0;
  double se = 0.0;
  double gap = 0.0;
  bool failed = false;
};

}  // namespace

int main() {
  const auto f = bench::fidelity();
  const bool smoke = env_truthy("LSM_FS_SMOKE");
  const bool full = env_truthy("LSM_FS_FULL") || util::paper_fidelity();
  bench::print_header(
      "Fig F12: convergence rate of E[T](n) to the mean-field limit", f);

  std::vector<std::size_t> counts;
  std::vector<double> lambdas;
  if (smoke) {
    counts = {128, 1024, 100000};
    lambdas = {0.90};
  } else {
    const std::size_t top = full ? (std::size_t{1} << 20) : (std::size_t{1} << 14);
    for (std::size_t n = 128; n <= top; n *= 2) counts.push_back(n);
    lambdas = {0.50, 0.80, 0.90, 0.95};
  }

  // Constant processor-seconds budget per point, anchored so the
  // smallest n runs at the configured fidelity; the floors keep the
  // largest points long enough to mix and to average over service times.
  const std::size_t n0 = counts.front();
  const double budget =
      (smoke ? 60.0 : f.horizon - f.warmup) * static_cast<double>(n0);
  const double warmup_budget =
      (smoke ? 20.0 : f.warmup) * static_cast<double>(n0);
  const double min_measured = smoke ? 40.0 : 400.0;
  const double min_warmup = smoke ? 15.0 : 300.0;

  // One spec per n (horizon and warmup depend on n; a spec's fidelity is
  // shared by its whole grid), each swept over every lambda. Failures are
  // isolated per job, so one lost point cannot discard the sweep.
  std::vector<Point> points;
  std::uint64_t total_events = 0;
  for (const std::size_t n : counts) {
    exp::ExperimentSpec spec;
    spec.name = "fig_finite_size_n" + std::to_string(n);
    spec.fidelity = f;
    spec.fidelity.warmup =
        std::max(min_warmup, warmup_budget / static_cast<double>(n));
    spec.fidelity.horizon =
        spec.fidelity.warmup +
        std::max(min_measured, budget / static_cast<double>(n));
    spec.lambdas = lambdas;
    exp::GridEntry e;
    e.label = "ws_n" + std::to_string(n);
    e.config.processors = n;
    e.config.policy = sim::StealPolicy::on_empty(2);
    e.estimate = false;
    spec.add(std::move(e));

    const auto report = exp::Runner().run(spec);
    std::cout << report.summary() << "\n";
    total_events += report.events_simulated;
    for (const auto& r : report.results) {
      Point pt;
      pt.n = n;
      pt.lambda = r.lambda;
      if (r.status != exp::JobStatus::Ok || !r.has_sim) {
        pt.failed = true;
      } else {
        pt.mean = r.sim_sojourn.mean;
        pt.se = r.sim_sojourn.n > 1
                    ? r.sim_sojourn.stddev /
                          std::sqrt(static_cast<double>(r.sim_sojourn.n))
                    : 0.0;
        pt.gap = pt.mean - core::SimpleWS(r.lambda).analytic_sojourn();
      }
      points.push_back(pt);
    }
  }

  // Per-point table: the measured gaps and whether each clears the
  // resolution gate.
  util::Table table(
      {"lambda", "n", "E[T](n)", "E[T](inf)", "gap", "se", "resolved"});
  for (const auto& pt : points) {
    if (pt.failed) {
      table.add_row({util::Table::fmt(pt.lambda, 2), std::to_string(pt.n),
                     "failed", "-", "-", "-", "-"});
      continue;
    }
    const double limit = core::SimpleWS(pt.lambda).analytic_sojourn();
    table.add_row(
        {util::Table::fmt(pt.lambda, 2), std::to_string(pt.n),
         util::Table::fmt(pt.mean, 4), util::Table::fmt(limit, 4),
         util::Table::fmt(pt.gap, 5), util::Table::fmt(pt.se, 5),
         std::abs(pt.gap) > 2.0 * pt.se ? "yes" : "no (noise floor)"});
  }
  table.print(std::cout);

  // Per-lambda decay fit vs Ying's O(1/sqrt(n))..O(1/n) window.
  std::cout << "\n";
  util::Table fits(
      {"lambda", "beta", "95% CI", "points", "C", "in [0.5, 1]?"});
  for (const double lambda : lambdas) {
    std::vector<std::size_t> ns;
    std::vector<double> gaps, ses;
    std::size_t resolved = 0;
    for (const auto& pt : points) {
      if (pt.failed || pt.lambda != lambda) continue;
      ns.push_back(pt.n);
      gaps.push_back(pt.gap);
      ses.push_back(pt.se);
      if (std::abs(pt.gap) > 2.0 * pt.se) ++resolved;
    }
    if (resolved < 2) {
      fits.add_row({util::Table::fmt(lambda, 2), "-", "-",
                    "0/" + std::to_string(ns.size()), "-",
                    "too few resolved points"});
      continue;
    }
    const auto fit = analysis::fit_decay_exponent(ns, gaps, ses);
    const double ci = 1.96 * fit.exponent_se;
    const bool in_window = fit.exponent + ci >= 0.5 && fit.exponent - ci <= 1.0;
    fits.add_row(
        {util::Table::fmt(lambda, 2), util::Table::fmt(fit.exponent, 3),
         "+/- " + util::Table::fmt(ci, 3),
         std::to_string(fit.points_used) + "/" + std::to_string(ns.size()),
         util::Table::fmt(std::exp(fit.log_amplitude), 3),
         in_window ? "yes" : "no"});
  }
  fits.print(std::cout);

  std::cout << "\nevents simulated: " << total_events
            << "\nreading: the finite-n gap decays like C * n^(-beta) with "
               "beta inside Ying's O(1/sqrt(n))-O(1/n) window; past the "
               "crossover n the gap sinks below simulation noise, i.e. the "
               "engine at 10^5+ processors is statistically "
               "indistinguishable from the mean-field limit\n";
  return 0;
}
