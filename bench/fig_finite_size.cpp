// Figure F12 (Table 1's trend, quantified): the finite-n bias of the
// simulated mean sojourn over the mean-field estimate decays like 1/n.
// Fitting E[T](n) = a + b/n across n in {8..256} recovers the limit `a`
// -- which should equal the fixed-point estimate -- and the bias
// coefficient `b`, which grows sharply with load.
#include <iostream>

#include "analysis/finite_size.hpp"
#include "bench_common.hpp"
#include "core/threshold_ws.hpp"
#include "util/statistics.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F12: finite-size scaling of the simple WS model",
                      f);
  par::ThreadPool pool(util::worker_threads());
  const std::vector<std::size_t> counts = {8, 16, 32, 64, 128, 256};

  util::Table table({"lambda", "fit limit a", "estimate", "err(%)",
                     "bias coeff b", "fit residual"});
  for (double lambda : {0.50, 0.80, 0.90, 0.95}) {
    sim::SimConfig base;
    base.arrival_rate = lambda;
    base.policy = sim::StealPolicy::on_empty(2);
    base.horizon = f.horizon;
    base.warmup = f.warmup;
    base.seed = 42;
    const auto fit =
        analysis::sojourn_scaling(base, counts, f.replications, pool);
    const double estimate = core::SimpleWS(lambda).analytic_sojourn();
    table.add_row(
        {util::Table::fmt(lambda, 2), util::Table::fmt(fit.limit),
         util::Table::fmt(estimate),
         util::Table::fmt(util::relative_error_pct(fit.limit, estimate), 2),
         util::Table::fmt(fit.coefficient, 2),
         util::Table::fmt(fit.residual, 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading: extrapolating small simulations along 1/n lands "
               "on the mean-field estimate, and the 1/n penalty b explodes "
               "as lambda -> 1 (exactly why Table 1's relative error grows "
               "with load)\n";
  return 0;
}
