// Figure F4 (Section 2.5 ablation): repeated steal attempts at rate r.
// Shows E[T] and pi_T falling as r grows (pi_T -> 0 as r -> infinity) and
// verifies the tail-decay formula lambda / (1 + r(1-lambda) + lambda - pi_2).
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/metrics.hpp"
#include "core/repeated_steal_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F4: repeated steal attempts (T = 3)", f);
  par::ThreadPool pool(util::worker_threads());
  constexpr std::size_t kT = 3;

  for (double lambda : {0.90, 0.95}) {
    std::cout << "lambda = " << lambda << "\n";
    util::Table table({"r", "Est E[T]", "Sim(128)", "pi_T", "tail ratio",
                       "predicted ratio"});
    for (double r : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
      core::RepeatedStealWS model(lambda, r, kT);
      const auto fp = core::solve_fixed_point(model);
      const double est = model.mean_sojourn(fp.state);

      std::string sim_cell = "-";
      if (r == 0.0 || r == 1.0 || r == 5.0) {
        sim::SimConfig cfg;
        cfg.processors = 128;
        cfg.arrival_rate = lambda;
        cfg.policy = r > 0.0 ? sim::StealPolicy::with_retries(r, kT)
                             : sim::StealPolicy::on_empty(kT);
        sim_cell = util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool));
      }
      table.add_row({util::Table::fmt(r, 1), util::Table::fmt(est), sim_cell,
                     util::Table::fmt(fp.state[kT], 4),
                     util::Table::fmt(core::tail_decay_ratio(fp.state, kT + 3), 4),
                     util::Table::fmt(model.predicted_tail_ratio(fp.state), 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "paper: in the limit r -> infinity, pi_T -> 0\n";
  return 0;
}
