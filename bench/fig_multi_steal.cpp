// Figure F6 (Section 3.4 ablations): (a) stealing k tasks at once under a
// high threshold T = 6 -- with free transfers, equalizing load helps;
// (b) the Rudolph-Slivkin-Allalouf-Upfal pairwise re-balancing scheme at
// rates r, against threshold stealing.
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/multi_steal_ws.hpp"
#include "core/rebalance_ws.hpp"
#include "core/threshold_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F6: multi-steal and pairwise re-balancing", f);
  par::ThreadPool pool(util::worker_threads());
  const double lambda = 0.9;

  std::cout << "(a) steal k tasks per success, T = 6, lambda = 0.9\n";
  util::Table multi({"k", "Est E[T]", "Sim(128)"});
  for (std::size_t k : {1u, 2u, 3u}) {
    core::MultiStealWS model(lambda, k, 6);
    sim::SimConfig cfg;
    cfg.processors = 128;
    cfg.arrival_rate = lambda;
    cfg.policy = sim::StealPolicy::on_empty(6, 1, k);
    multi.add_row({std::to_string(k),
                   util::Table::fmt(core::fixed_point_sojourn(model)),
                   util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool))});
  }
  multi.print(std::cout);

  std::cout << "\n(b) pairwise re-balancing at rate r, lambda = 0.9\n";
  util::Table reb({"r", "Est E[T]", "Sim(128)"});
  for (double r : {0.25, 0.5, 1.0, 2.0}) {
    core::RebalanceWS model(lambda, r);
    sim::SimConfig cfg;
    cfg.processors = 128;
    cfg.arrival_rate = lambda;
    cfg.policy = sim::StealPolicy::rebalance(r);
    reb.add_row({util::Table::fmt(r, 2),
                 util::Table::fmt(core::fixed_point_sojourn(model)),
                 util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool))});
  }
  reb.print(std::cout);

  std::cout << "\nreference: threshold stealing T=2 gives "
            << core::SimpleWS(lambda).analytic_sojourn()
            << ", no stealing gives " << 1.0 / (1.0 - lambda) << "\n";
  return 0;
}
