// Figure F1 (Section 2.2's headline claim): with work stealing the tails
// of the load distribution decay geometrically at ratio
// lambda / (1 + lambda - pi_2), strictly faster than the no-stealing ratio
// lambda. Prints the fixed-point tails side by side plus measured vs
// predicted decay ratios, and cross-checks against a simulated tail.
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/metrics.hpp"
#include "core/multi_choice_ws.hpp"
#include "core/no_stealing.hpp"
#include "core/threshold_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F1: geometric tail decay, lambda = 0.9", f);
  const double lambda = 0.9;

  core::NoStealing none(lambda);
  core::SimpleWS simple(lambda);
  core::ThresholdWS t4(lambda, 4);
  core::MultiChoiceWS two(lambda, 2, 2);

  const auto pi_none = none.analytic_fixed_point();
  const auto pi_simple = simple.analytic_fixed_point();
  const auto pi_t4 = t4.analytic_fixed_point();
  const auto pi_two = core::solve_fixed_point(two).state;

  // Simulated empirical tail at n = 128 for the simple model.
  sim::SimConfig cfg;
  cfg.processors = 128;
  cfg.arrival_rate = lambda;
  cfg.policy = sim::StealPolicy::on_empty(2);
  cfg.horizon = f.horizon;
  cfg.warmup = f.warmup;
  cfg.seed = 42;
  par::ThreadPool pool(util::worker_threads());
  const auto rep = sim::replicate(cfg, f.replications, pool);

  util::Table table({"i", "no-steal", "simple-ws", "sim(128) simple",
                     "threshold T=4", "2 choices"});
  for (std::size_t i = 0; i <= 14; ++i) {
    table.add_row({std::to_string(i), util::Table::fmt(pi_none[i], 6),
                   util::Table::fmt(pi_simple[i], 6),
                   util::Table::fmt(rep.tail_fraction[i], 6),
                   util::Table::fmt(pi_t4[i], 6),
                   util::Table::fmt(pi_two[i], 6)});
  }
  table.print(std::cout);

  std::cout << "\ndecay ratios (measured by log-linear fit | predicted):\n"
            << "  no-steal  : " << core::tail_decay_ratio(pi_none, 2) << " | "
            << lambda << "\n"
            << "  simple-ws : " << core::tail_decay_ratio(pi_simple, 3)
            << " | " << simple.analytic_tail_ratio() << "\n"
            << "  T=4       : " << core::tail_decay_ratio(pi_t4, 5) << " | "
            << t4.analytic_tail_ratio() << "\n"
            << "  2 choices : " << core::tail_decay_ratio(pi_two, 3)
            << " | >= " << two.tail_ratio_bound(pi_two) << " (bound)\n";
  return 0;
}
