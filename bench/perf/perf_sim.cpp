// Simulator hot-path performance harness: the repo's tracked perf
// baseline.
//
// Times the discrete-event engine (events/sec) on the table1 workload
// shape — lambda = 0.9 steal-on-empty plus the Share and Preemptive
// variants — at n in {64, 1024} on pinned seeds, and the exp::Runner
// sharding path (jobs/sec) on a small grid with caching disabled. Writes
// the measurements as JSON and, when given a committed baseline file,
// prints and embeds the per-case and aggregate speedups so perf
// regressions show up as a diff.
//
//   perf_sim [out.json] [baseline.json]
//
// Defaults: out = BENCH_sim.json, no baseline. The sampled simulation
// values are pinned by tests/sim_golden_trace_test.cpp; this harness only
// tracks how fast the identical event sequence executes.
#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace lsm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PerfCase {
  std::string name;
  sim::SimConfig cfg;
  /// Large-n cases time fewer, longer runs: one seed, best-of-2 (the
  /// n <= 1024 tracked cases keep the original 3-seed best-of-5 recipe,
  /// so their numbers stay comparable across baselines).
  bool large = false;
};

struct CaseResult {
  std::string name;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double baseline_events_per_sec = 0.0;  // 0 = no baseline
  double bytes_per_proc = 0.0;  ///< engine_bytes / processors (exact)
  double peak_rss_mb = 0.0;     ///< process high-water RSS after the case
};

/// Process peak RSS in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss) / 1024.0;
}

/// {n = 64, n = 1024} x {OnEmpty, Share, Preemptive} at the table1 load.
std::vector<PerfCase> perf_cases() {
  std::vector<PerfCase> cases;
  for (const std::size_t n : {std::size_t{64}, std::size_t{1024}}) {
    for (const auto& [label, policy] :
         {std::pair{"on_empty", sim::StealPolicy::on_empty(2)},
          std::pair{"share", sim::StealPolicy::sharing(2)},
          std::pair{"preemptive", sim::StealPolicy::preemptive(1, 2)}}) {
      PerfCase c;
      c.name = std::string(label) + "_n" + std::to_string(n);
      c.cfg.processors = n;
      c.cfg.arrival_rate = 0.9;
      c.cfg.policy = policy;
      c.cfg.horizon = n <= 64 ? 6000.0 : 500.0;
      c.cfg.warmup = c.cfg.horizon / 10.0;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

/// Scale-out cases: the sharded SoA engine at n = 2^16 and n = 10^6
/// (table1 load shape, short horizons so each run stays in seconds).
/// These track events/sec AND the per-processor memory budget.
std::vector<PerfCase> large_cases() {
  std::vector<PerfCase> cases;
  {
    PerfCase c;
    c.name = "on_empty_n65536";
    c.cfg.processors = 65536;
    c.cfg.arrival_rate = 0.9;
    c.cfg.policy = sim::StealPolicy::on_empty(2);
    c.cfg.horizon = 120.0;
    c.cfg.warmup = 12.0;
    c.large = true;
    cases.push_back(std::move(c));
  }
  {
    PerfCase c;
    c.name = "on_empty_n1000000";
    c.cfg.processors = 1000000;
    c.cfg.arrival_rate = 0.9;
    c.cfg.policy = sim::StealPolicy::on_empty(2);
    c.cfg.horizon = 8.0;
    c.cfg.warmup = 1.0;
    c.large = true;
    cases.push_back(std::move(c));
  }
  return cases;
}

/// Dispatched-event count of one run (thinned arrivals excluded; the same
/// formula exp::Runner reports, so rates line up with run manifests).
std::uint64_t event_count(const sim::SimResult& r) {
  return r.arrivals + r.completions + r.steal_attempts + r.forwards;
}

/// Repetitions per case; the fastest one is reported. Best-of timing
/// measures the code, not whatever else the machine was doing — on a
/// shared single-core box the mean is dominated by preemption noise.
constexpr int kRepetitions = 5;

CaseResult time_case(const PerfCase& pc) {
  const std::vector<std::uint64_t> seeds =
      pc.large ? std::vector<std::uint64_t>{1}
               : std::vector<std::uint64_t>{1, 2, 3};
  const int reps = pc.large ? 2 : kRepetitions;
  CaseResult out;
  out.name = pc.name;
  // Untimed warmup run: faults in the pages and stabilizes the clock.
  {
    sim::SimConfig cfg = pc.cfg;
    cfg.seed = seeds[0];
    cfg.horizon = pc.cfg.horizon / 10.0;
    cfg.warmup = cfg.horizon / 10.0;
    (void)sim::simulate(cfg);
  }
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t events = 0;
    const auto t0 = Clock::now();
    for (const std::uint64_t seed : seeds) {
      sim::SimConfig cfg = pc.cfg;
      cfg.seed = seed;
      const auto res = sim::simulate(cfg);
      events += event_count(res);
      out.bytes_per_proc = static_cast<double>(res.engine_bytes) /
                           static_cast<double>(cfg.processors);
    }
    const double secs = seconds_since(t0);
    if (rep == 0 || secs < best) best = secs;
    out.events = events;  // identical every repetition (pinned seeds)
  }
  out.seconds = best;
  out.events_per_sec =
      out.seconds > 0.0 ? static_cast<double>(out.events) / out.seconds : 0.0;
  out.peak_rss_mb = peak_rss_mib();
  return out;
}

/// Times exp::Runner sharding a small uncached grid across the pool and
/// prints a one-line summary.
util::Json time_runner() {
  exp::ExperimentSpec spec;
  spec.name = "";  // no artifacts
  spec.fidelity = exp::Fidelity::quick();
  spec.fidelity.replications = 2;
  spec.fidelity.horizon = 2000.0;
  spec.fidelity.warmup = 200.0;
  spec.lambdas = {0.5, 0.7, 0.9, 0.95};
  for (const std::size_t n : {16u, 32u, 64u}) {
    exp::GridEntry e;
    e.label = "sim" + std::to_string(n);
    e.config.processors = n;
    e.config.policy = sim::StealPolicy::on_empty(2);
    e.estimate = false;
    spec.add(std::move(e));
  }
  exp::RunnerOptions opts;
  opts.cache_dir = "";      // measure compute, not cache hits
  opts.artifact_dir = "";
  const auto t0 = Clock::now();
  const auto report = exp::Runner(opts).run(spec);
  const double secs = seconds_since(t0);
  const double jobs_per_sec =
      secs > 0.0 ? static_cast<double>(report.results.size()) / secs : 0.0;
  std::cout << "runner: " << report.results.size() << " jobs in "
            << util::Table::fmt(secs, 2) << " s on " << report.threads
            << " threads (" << util::Table::fmt(jobs_per_sec, 2)
            << " jobs/s)\n";
  auto j = util::Json::object();
  j["jobs"] = report.results.size();
  j["threads"] = static_cast<std::size_t>(report.threads);
  j["events"] = report.events_simulated;
  j["seconds"] = secs;
  j["jobs_per_sec"] = jobs_per_sec;
  j["events_per_sec"] =
      secs > 0.0 ? static_cast<double>(report.events_simulated) / secs : 0.0;
  return j;
}

/// Pulls `"events_per_sec": <v>` following `"name": "<name>"` out of a
/// previously written BENCH_sim.json. A full JSON parser is overkill for
/// reading back our own flat output.
double baseline_rate(const std::string& doc, const std::string& name) {
  const auto at = doc.find("\"name\": \"" + name + "\"");
  if (at == std::string::npos) return 0.0;
  const auto key = doc.find("\"events_per_sec\":", at);
  if (key == std::string::npos) return 0.0;
  return std::strtod(doc.c_str() + key + 17, nullptr);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const std::string baseline_path = argc > 2 ? argv[2] : "";
  const std::string baseline = baseline_path.empty() ? "" : slurp(baseline_path);
  if (!baseline_path.empty() && baseline.empty()) {
    std::cerr << "warning: baseline " << baseline_path << " not readable\n";
  }

  std::cout << "=== perf_sim: simulator hot-path baseline ===\n\n";
  util::Table table({"case", "events", "events/s", "B/proc", "rss MB",
                     "baseline", "speedup"});
  auto cases_json = util::Json::array();
  // The tracked aggregate covers only the n <= 1024 legacy cases, so it
  // stays comparable with baselines written before the scale-out cases
  // existed; the large-n cases are tracked per-case.
  std::uint64_t total_events = 0;
  double total_seconds = 0.0;
  auto cases = perf_cases();
  for (auto& lc : large_cases()) cases.push_back(std::move(lc));
  for (const auto& pc : cases) {
    const CaseResult r = [&] {
      CaseResult cr = time_case(pc);
      cr.baseline_events_per_sec = baseline_rate(baseline, pc.name);
      return cr;
    }();
    if (!pc.large) {
      total_events += r.events;
      total_seconds += r.seconds;
    }
    const bool has_base = r.baseline_events_per_sec > 0.0;
    table.add_row(
        {r.name, std::to_string(r.events), util::Table::fmt(r.events_per_sec, 0),
         util::Table::fmt(r.bytes_per_proc, 1),
         util::Table::fmt(r.peak_rss_mb, 1),
         has_base ? util::Table::fmt(r.baseline_events_per_sec, 0) : "-",
         has_base
             ? util::Table::fmt(r.events_per_sec / r.baseline_events_per_sec, 2)
             : "-"});
    auto j = util::Json::object();
    j["name"] = r.name;
    j["processors"] = pc.cfg.processors;
    j["policy"] = pc.cfg.policy.name();
    j["events"] = r.events;
    j["seconds"] = r.seconds;
    j["events_per_sec"] = r.events_per_sec;
    j["bytes_per_proc"] = r.bytes_per_proc;
    j["peak_rss_mb"] = r.peak_rss_mb;
    if (has_base) {
      j["baseline_events_per_sec"] = r.baseline_events_per_sec;
      j["speedup"] = r.events_per_sec / r.baseline_events_per_sec;
    }
    cases_json.push_back(std::move(j));
  }
  table.print(std::cout);

  const double agg_rate =
      total_seconds > 0.0 ? static_cast<double>(total_events) / total_seconds
                          : 0.0;
  auto aggregate = util::Json::object();
  aggregate["name"] = "aggregate";
  aggregate["events"] = total_events;
  aggregate["seconds"] = total_seconds;
  aggregate["events_per_sec"] = agg_rate;
  const double agg_base = baseline_rate(baseline, "aggregate");
  std::cout << "\naggregate: " << util::Table::fmt(agg_rate, 0) << " events/s";
  if (agg_base > 0.0) {
    aggregate["baseline_events_per_sec"] = agg_base;
    aggregate["speedup"] = agg_rate / agg_base;
    std::cout << " (baseline " << util::Table::fmt(agg_base, 0) << ", "
              << util::Table::fmt(agg_rate / agg_base, 2) << "x)";
  }
  std::cout << "\n\n";

  auto runner = time_runner();

  auto doc = util::Json::object();
  doc["schema"] = "lsm-sim-perf/1";
  doc["workload"] = "table1 shape: lambda=0.9, T=2; pinned seeds {1,2,3}";
  doc["repetitions"] = static_cast<std::size_t>(kRepetitions);
  doc["sim_cases"] = std::move(cases_json);
  doc["aggregate"] = std::move(aggregate);
  doc["runner"] = std::move(runner);
  std::ofstream out(out_path, std::ios::trunc);
  out << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
