// Fixed-point engine performance harness: the repo's tracked ODE baseline.
//
// Solves a pinned model x lambda grid spanning the explicit, stiff and
// multi-class paths and reports, per case, the derivative-evaluation count
// (the primary metric: it is deterministic and machine-independent) and
// best-of-5 wall time. Writes the measurements as JSON and, when given a
// committed baseline file, prints and embeds per-case and aggregate
// evaluation reductions and wall-time speedups so solver regressions show
// up as a diff.
//
//   perf_ode [out.json] [baseline.json]
//            [--mode=current|legacy|sweep-warm|sweep-cold]
//
// Defaults: out = BENCH_ode.json, no baseline, mode = current. Mode
// `legacy` pins the pre-engine behaviour (explicit relaxation or banded
// pseudo-transient continuation at the constructed truncation, no Anderson
// acceleration, no adaptive truncation); it exists to record
// BENCH_ode.baseline.json from the same binary. E[T] per case is included
// in the JSON so an accidental semantic change is visible in the diff
// (tests/golden_values_test.cpp pins the same values independently).
//
// The sweep modes measure λ-sweep continuation instead of standalone
// solves: a 6-model x 16-λ grid chained through
// core::FixedPointContinuation (sweep-warm) or solved point-by-point from
// scratch (sweep-cold). sweep-warm also runs the cold reference in-process
// and reports, per model, the evaluation reduction and the worst
// warm-vs-cold sojourn deviation; the default output file for both is
// BENCH_ode_sweep.json (the committed copy tracks the warm numbers).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/fixed_point.hpp"
#include "core/multi_class_ws.hpp"
#include "core/registry.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace lsm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PerfCase {
  std::string name;
  std::function<std::unique_ptr<core::MeanFieldModel>()> make;
};

struct CaseResult {
  std::string name;
  std::size_t rhs_evals = 0;
  double seconds = 0.0;
  double sojourn = 0.0;
  std::string method;
  std::size_t final_truncation = 0;
  double baseline_evals = 0.0;   // 0 = no baseline
  double baseline_seconds = 0.0;
};

std::unique_ptr<core::MeanFieldModel> reg(const std::string& name,
                                          double lambda,
                                          core::ModelParams params = {}) {
  return core::make_model(name, lambda, std::move(params));
}

/// Pinned grid: explicit single-tail models across the load range, the
/// stiff Erlang path at two stage counts, the segmented transfer models,
/// and the multi-class models. Names encode model and lambda so baseline
/// lookup survives reordering.
std::vector<PerfCase> perf_cases() {
  std::vector<PerfCase> cases;
  auto add = [&](std::string name,
                 std::function<std::unique_ptr<core::MeanFieldModel>()> make) {
    cases.push_back({std::move(name), std::move(make)});
  };
  add("simple_l0.70", [] { return reg("simple", 0.70); });
  add("simple_l0.99", [] { return reg("simple", 0.99); });
  add("no_stealing_l0.95", [] { return reg("no-stealing", 0.95); });
  add("threshold_T4_l0.90", [] { return reg("threshold", 0.90, {{"T", 4}}); });
  add("multi_choice_d2_l0.90",
      [] { return reg("multi-choice", 0.90, {{"d", 2}, {"T", 3}}); });
  add("multi_steal_k2_l0.90",
      [] { return reg("multi-steal", 0.90, {{"k", 2}, {"T", 4}}); });
  add("repeated_r1_l0.90",
      [] { return reg("repeated", 0.90, {{"r", 1}, {"T", 3}}); });
  add("composed_l0.90", [] {
    return reg("composed", 0.90, {{"T", 4}, {"d", 2}, {"k", 2}, {"B", 1}});
  });
  add("preemptive_B1_l0.90",
      [] { return reg("preemptive", 0.90, {{"B", 1}, {"T", 2}}); });
  add("rebalance_r1_l0.90", [] { return reg("rebalance", 0.90, {{"r", 1}}); });
  add("sharing_S1_l0.90", [] { return reg("sharing", 0.90, {{"S", 1}}); });
  add("erlang_c10_l0.90", [] { return reg("erlang", 0.90, {{"c", 10}}); });
  add("erlang_c20_l0.70", [] { return reg("erlang", 0.70, {{"c", 20}}); });
  add("transfer_r4_l0.90",
      [] { return reg("transfer", 0.90, {{"r", 4}, {"T", 2}}); });
  add("staged_transfer_c3_l0.90", [] {
    return reg("staged-transfer", 0.90, {{"r", 4}, {"c", 3}, {"T", 2}});
  });
  add("heterogeneous_l0.90", [] {
    return reg("heterogeneous", 0.90,
               {{"f", 0.5}, {"mu_f", 1.5}, {"mu_s", 0.5}, {"T", 2}});
  });
  add("multi_class3_l0.90", [] {
    return std::make_unique<core::MultiClassWS>(
        0.90,
        std::vector<core::ProcessorClass>{
            {0.25, 1.6}, {0.5, 1.0}, {0.25, 0.4}},
        2);
  });
  return cases;
}

/// Pre-engine behaviour, used to record the committed baseline: explicit
/// relaxation (or the banded stiff path, which models opted into before)
/// at the constructed truncation, Newton polish unchanged.
core::FixedPointOptions legacy_options(const core::MeanFieldModel& model) {
  core::FixedPointOptions opts;
  opts.truncation = core::TruncationMode::Fixed;
  opts.method = model.stiff_bandwidth() > 0 ? ode::FixedPointMethod::Stiff
                                            : ode::FixedPointMethod::Relax;
  return opts;
}

/// Repetitions per case; the fastest is reported. Best-of timing measures
/// the code, not whatever else the machine was doing.
constexpr int kRepetitions = 5;

CaseResult time_case(const PerfCase& pc, bool legacy) {
  const auto model = pc.make();
  const core::FixedPointOptions opts =
      legacy ? legacy_options(*model) : core::FixedPointOptions{};
  CaseResult out;
  out.name = pc.name;
  (void)core::solve_fixed_point(*model, opts);  // untimed warmup
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = Clock::now();
    const auto r = core::solve_fixed_point(*model, opts);
    const double secs = seconds_since(t0);
    if (rep == 0 || secs < out.seconds) out.seconds = secs;
    out.rhs_evals = r.rhs_evals;  // deterministic: identical every rep
    out.sojourn = model->mean_sojourn(r.state);
    out.method = ode::to_string(r.method);
    out.final_truncation = r.final_truncation;
  }
  return out;
}

// --- λ-sweep continuation benchmark (modes sweep-warm / sweep-cold) ----

struct SweepModel {
  std::string name;      ///< case label in the table/JSON
  std::string reg_name;  ///< registry name
  core::ModelParams params;
};

/// Six models spanning the registry's solver paths (single-tail explicit,
/// thresholded variants, the segmented transfer family, task sharing).
std::vector<SweepModel> sweep_models() {
  return {{"simple", "simple", {}},
          {"threshold_T4", "threshold", {{"T", 4}}},
          {"multi_choice_d2", "multi-choice", {{"d", 2}, {"T", 3}}},
          {"multi_steal_k2", "multi-steal", {{"k", 2}, {"T", 4}}},
          {"transfer_r4", "transfer", {{"r", 4}, {"T", 2}}},
          {"sharing_S1", "sharing", {{"S", 1}}}};
}

/// 16 ascending arrival rates from the easy regime to near-critical.
std::vector<double> sweep_lambdas() {
  std::vector<double> ls;
  for (int j = 0; j < 16; ++j) ls.push_back(0.50 + 0.032 * j);
  return ls;
}

std::string sci(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::scientific << v;
  return os.str();
}

struct SweepChainResult {
  std::size_t rhs_evals = 0;
  std::vector<double> sojourns;
  std::size_t warm_rejections = 0;  ///< warm starts the safeguard discarded
};

/// Solves the model's whole λ chain once. warm = continuation through a
/// FixedPointContinuation; cold = standalone solve per point.
SweepChainResult run_sweep_chain(const SweepModel& sm,
                                 const std::vector<double>& lambdas,
                                 bool warm) {
  SweepChainResult out;
  core::FixedPointContinuation chain;
  for (std::size_t j = 0; j < lambdas.size(); ++j) {
    const auto model = reg(sm.reg_name, lambdas[j], sm.params);
    const auto r = warm ? chain.solve(*model)
                        : core::solve_fixed_point(*model);
    out.rhs_evals += r.rhs_evals;
    out.sojourns.push_back(model->mean_sojourn(r.state));
    if (warm && j > 0 && !r.warm) ++out.warm_rejections;
  }
  return out;
}

int run_sweep_mode(bool warm, const std::string& out_path) {
  const auto lambdas = sweep_lambdas();
  std::cout << "=== perf_ode: λ-sweep continuation ("
            << (warm ? "sweep-warm" : "sweep-cold") << " mode, "
            << sweep_models().size() << " models x " << lambdas.size()
            << " λ) ===\n\n";

  util::Table table(warm ? std::vector<std::string>{"model", "warm evals",
                                                    "cold evals", "redux",
                                                    "max |Δ sojourn|",
                                                    "rejects", "ms"}
                         : std::vector<std::string>{"model", "evals", "ms"});
  auto cases_json = util::Json::array();
  std::size_t total = 0, total_cold = 0;
  double total_seconds = 0.0, max_dev_all = 0.0;
  for (const auto& sm : sweep_models()) {
    const auto chain = run_sweep_chain(sm, lambdas, warm);
    // Best-of-N wall time for the whole chain (evals are deterministic).
    double secs = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto t0 = Clock::now();
      (void)run_sweep_chain(sm, lambdas, warm);
      const double s = seconds_since(t0);
      if (rep == 0 || s < secs) secs = s;
    }
    total += chain.rhs_evals;
    total_seconds += secs;

    auto j = util::Json::object();
    j["name"] = sm.name;
    j["rhs_evals"] = chain.rhs_evals;
    j["seconds"] = secs;
    j["sojourn_last"] = chain.sojourns.back();
    if (warm) {
      const auto cold = run_sweep_chain(sm, lambdas, false);
      double max_dev = 0.0;
      for (std::size_t k = 0; k < lambdas.size(); ++k) {
        max_dev = std::max(max_dev,
                           std::abs(chain.sojourns[k] - cold.sojourns[k]));
      }
      total_cold += cold.rhs_evals;
      max_dev_all = std::max(max_dev_all, max_dev);
      const double redux = static_cast<double>(cold.rhs_evals) /
                           static_cast<double>(chain.rhs_evals);
      j["cold_rhs_evals"] = cold.rhs_evals;
      j["eval_reduction"] = redux;
      j["max_sojourn_dev"] = max_dev;
      j["warm_rejections"] = chain.warm_rejections;
      table.add_row({sm.name, std::to_string(chain.rhs_evals),
                     std::to_string(cold.rhs_evals),
                     util::Table::fmt(redux, 2), sci(max_dev),
                     std::to_string(chain.warm_rejections),
                     util::Table::fmt(secs * 1e3, 2)});
    } else {
      table.add_row({sm.name, std::to_string(chain.rhs_evals),
                     util::Table::fmt(secs * 1e3, 2)});
    }
    cases_json.push_back(std::move(j));
  }
  table.print(std::cout);

  auto aggregate = util::Json::object();
  aggregate["name"] = "aggregate";
  aggregate["rhs_evals"] = total;
  aggregate["seconds"] = total_seconds;
  std::cout << "\naggregate: " << total << " rhs evals, "
            << util::Table::fmt(total_seconds * 1e3, 1) << " ms";
  if (warm) {
    const double redux =
        static_cast<double>(total_cold) / static_cast<double>(total);
    aggregate["cold_rhs_evals"] = total_cold;
    aggregate["eval_reduction"] = redux;
    aggregate["max_sojourn_dev"] = max_dev_all;
    std::cout << " (cold " << total_cold << " evals, "
              << util::Table::fmt(redux, 2) << "x fewer warm, max dev "
              << max_dev_all << ")";
  }
  std::cout << "\n\n";

  auto doc = util::Json::object();
  doc["schema"] = "lsm-ode-sweep-perf/1";
  doc["mode"] = warm ? "sweep-warm" : "sweep-cold";
  doc["workload"] =
      "6-model x 16-λ ascending sweep; rhs_evals is deterministic, wall "
      "time best-of-" +
      std::to_string(kRepetitions);
  doc["lambda_grid"] = "0.50 + 0.032j, j = 0..15";
  doc["sweep_cases"] = std::move(cases_json);
  doc["aggregate"] = std::move(aggregate);
  std::ofstream out(out_path, std::ios::trunc);
  out << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

/// Pulls `"<key>": <v>` following `"name": "<name>"` out of a previously
/// written BENCH_ode.json. A full JSON parser is overkill for reading back
/// our own flat output.
double baseline_value(const std::string& doc, const std::string& name,
                      const std::string& key) {
  const auto at = doc.find("\"name\": \"" + name + "\"");
  if (at == std::string::npos) return 0.0;
  const std::string needle = "\"" + key + "\":";
  const auto pos = doc.find(needle, at);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path;
  bool legacy = false;
  int sweep = -1;  // -1 = not a sweep mode, else bool: warm?
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode=legacy") {
      legacy = true;
    } else if (arg == "--mode=current") {
      legacy = false;
    } else if (arg == "--mode=sweep-warm") {
      sweep = 1;
    } else if (arg == "--mode=sweep-cold") {
      sweep = 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg
                << " (usage: perf_ode [out.json] [baseline.json]"
                   " [--mode=current|legacy|sweep-warm|sweep-cold])\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (!positional.empty()) out_path = positional[0];
  if (positional.size() > 1) baseline_path = positional[1];
  if (out_path.empty()) {
    out_path = sweep >= 0 ? "BENCH_ode_sweep.json" : "BENCH_ode.json";
  }
  if (sweep >= 0) return run_sweep_mode(sweep == 1, out_path);
  const std::string baseline =
      baseline_path.empty() ? "" : slurp(baseline_path);
  if (!baseline_path.empty() && baseline.empty()) {
    std::cerr << "warning: baseline " << baseline_path << " not readable\n";
  }

  std::cout << "=== perf_ode: fixed-point engine baseline ("
            << (legacy ? "legacy" : "current") << " mode) ===\n\n";
  util::Table table({"case", "method", "L", "rhs evals", "ms", "base evals",
                     "eval redux", "speedup"});
  auto cases_json = util::Json::array();
  std::size_t total_evals = 0;
  double total_seconds = 0.0;
  for (const auto& pc : perf_cases()) {
    CaseResult r = time_case(pc, legacy);
    r.baseline_evals = baseline_value(baseline, r.name, "rhs_evals");
    r.baseline_seconds = baseline_value(baseline, r.name, "seconds");
    total_evals += r.rhs_evals;
    total_seconds += r.seconds;
    const bool has_base = r.baseline_evals > 0.0;
    table.add_row(
        {r.name, r.method, std::to_string(r.final_truncation),
         std::to_string(r.rhs_evals), util::Table::fmt(r.seconds * 1e3, 2),
         has_base ? util::Table::fmt(r.baseline_evals, 0) : "-",
         has_base
             ? util::Table::fmt(
                   r.baseline_evals / static_cast<double>(r.rhs_evals), 1)
             : "-",
         r.baseline_seconds > 0.0
             ? util::Table::fmt(r.baseline_seconds / r.seconds, 1)
             : "-"});
    auto j = util::Json::object();
    j["name"] = r.name;
    j["method"] = r.method;
    j["final_truncation"] = r.final_truncation;
    j["rhs_evals"] = r.rhs_evals;
    j["seconds"] = r.seconds;
    j["sojourn"] = r.sojourn;
    if (has_base) {
      j["baseline_rhs_evals"] = r.baseline_evals;
      j["eval_reduction"] =
          r.baseline_evals / static_cast<double>(r.rhs_evals);
    }
    if (r.baseline_seconds > 0.0) {
      j["baseline_seconds"] = r.baseline_seconds;
      j["speedup"] = r.baseline_seconds / r.seconds;
    }
    cases_json.push_back(std::move(j));
  }
  table.print(std::cout);

  auto aggregate = util::Json::object();
  aggregate["name"] = "aggregate";
  aggregate["rhs_evals"] = total_evals;
  aggregate["seconds"] = total_seconds;
  const double agg_base_evals = baseline_value(baseline, "aggregate", "rhs_evals");
  const double agg_base_secs = baseline_value(baseline, "aggregate", "seconds");
  std::cout << "\naggregate: " << total_evals << " rhs evals, "
            << util::Table::fmt(total_seconds * 1e3, 1) << " ms";
  if (agg_base_evals > 0.0) {
    const double redux = agg_base_evals / static_cast<double>(total_evals);
    aggregate["baseline_rhs_evals"] = agg_base_evals;
    aggregate["eval_reduction"] = redux;
    std::cout << " (baseline " << util::Table::fmt(agg_base_evals, 0)
              << " evals, " << util::Table::fmt(redux, 1) << "x fewer";
    if (agg_base_secs > 0.0) {
      aggregate["baseline_seconds"] = agg_base_secs;
      aggregate["speedup"] = agg_base_secs / total_seconds;
      std::cout << ", " << util::Table::fmt(agg_base_secs / total_seconds, 1)
                << "x faster";
    }
    std::cout << ")";
  }
  std::cout << "\n\n";

  auto doc = util::Json::object();
  doc["schema"] = "lsm-ode-perf/1";
  doc["mode"] = legacy ? "legacy" : "current";
  doc["workload"] =
      "pinned model x lambda grid; rhs_evals is deterministic, wall time "
      "best-of-" +
      std::to_string(kRepetitions);
  doc["repetitions"] = static_cast<std::size_t>(kRepetitions);
  doc["ode_cases"] = std::move(cases_json);
  doc["aggregate"] = std::move(aggregate);
  std::ofstream out(out_path, std::ios::trunc);
  out << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
