// Fixed-point engine performance harness: the repo's tracked ODE baseline.
//
// Solves a pinned model x lambda grid spanning the explicit, stiff and
// multi-class paths and reports, per case, the derivative-evaluation count
// (the primary metric: it is deterministic and machine-independent) and
// best-of-5 wall time. Writes the measurements as JSON and, when given a
// committed baseline file, prints and embeds per-case and aggregate
// evaluation reductions and wall-time speedups so solver regressions show
// up as a diff.
//
//   perf_ode [out.json] [baseline.json]
//            [--mode=current|legacy|sweep-warm|sweep-cold|batch]
//
// Defaults: out = BENCH_ode.json, no baseline, mode = current. Mode
// `legacy` pins the pre-engine behaviour (explicit relaxation or banded
// pseudo-transient continuation at the constructed truncation, no Anderson
// acceleration, no adaptive truncation); it exists to record
// BENCH_ode.baseline.json from the same binary. E[T] per case is included
// in the JSON so an accidental semantic change is visible in the diff
// (tests/golden_values_test.cpp pins the same values independently). The
// two 10^4-dimension near-critical cases exercise the matrix-free
// Newton-Krylov path and are skipped in legacy mode (explicit relaxation
// at that dimension and load would run for hours).
//
// The sweep modes measure λ-sweep continuation instead of standalone
// solves: a 6-model x 16-λ grid chained through
// core::FixedPointContinuation (sweep-warm) or solved point-by-point from
// scratch (sweep-cold). sweep-warm also runs the cold reference in-process
// and reports, per model, the evaluation reduction and the worst
// warm-vs-cold sojourn deviation. Mode `batch` runs the same grid through
// core::batched_lambda_sweep (SIMD-batched lanes, see core/batch.hpp) plus
// the warm and cold scalar references in-process, reporting the batch
// mode's evaluation and wall-time advantage over the warm scalar chain.
// The default output file for all three is BENCH_ode_sweep.json (the
// committed copy tracks the batch numbers, which embed the warm/cold
// columns).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/fixed_point.hpp"
#include "core/multi_class_ws.hpp"
#include "core/registry.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace lsm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PerfCase {
  std::string name;
  std::function<std::unique_ptr<core::MeanFieldModel>()> make;
  /// Requires the current engine (Krylov path); skipped in legacy mode,
  /// where explicit relaxation at the case's dimension would run for hours.
  bool modern_only = false;
};

struct CaseResult {
  std::string name;
  std::size_t rhs_evals = 0;
  double seconds = 0.0;
  double sojourn = 0.0;
  double residual = 0.0;
  std::string method;
  std::size_t final_truncation = 0;
  double baseline_evals = 0.0;   // 0 = no baseline
  double baseline_seconds = 0.0;
};

std::unique_ptr<core::MeanFieldModel> reg(const std::string& name,
                                          double lambda,
                                          core::ModelParams params = {}) {
  return core::make_model(name, lambda, std::move(params));
}

/// Pinned grid: explicit single-tail models across the load range, the
/// stiff Erlang path at two stage counts, the segmented transfer models,
/// and the multi-class models. Names encode model and lambda so baseline
/// lookup survives reordering.
std::vector<PerfCase> perf_cases() {
  std::vector<PerfCase> cases;
  auto add = [&](std::string name,
                 std::function<std::unique_ptr<core::MeanFieldModel>()> make,
                 bool modern_only = false) {
    cases.push_back({std::move(name), std::move(make), modern_only});
  };
  add("simple_l0.70", [] { return reg("simple", 0.70); });
  add("simple_l0.99", [] { return reg("simple", 0.99); });
  add("no_stealing_l0.95", [] { return reg("no-stealing", 0.95); });
  add("threshold_T4_l0.90", [] { return reg("threshold", 0.90, {{"T", 4}}); });
  add("multi_choice_d2_l0.90",
      [] { return reg("multi-choice", 0.90, {{"d", 2}, {"T", 3}}); });
  add("multi_steal_k2_l0.90",
      [] { return reg("multi-steal", 0.90, {{"k", 2}, {"T", 4}}); });
  add("repeated_r1_l0.90",
      [] { return reg("repeated", 0.90, {{"r", 1}, {"T", 3}}); });
  add("composed_l0.90", [] {
    return reg("composed", 0.90, {{"T", 4}, {"d", 2}, {"k", 2}, {"B", 1}});
  });
  add("preemptive_B1_l0.90",
      [] { return reg("preemptive", 0.90, {{"B", 1}, {"T", 2}}); });
  add("rebalance_r1_l0.90", [] { return reg("rebalance", 0.90, {{"r", 1}}); });
  add("sharing_S1_l0.90", [] { return reg("sharing", 0.90, {{"S", 1}}); });
  add("erlang_c10_l0.90", [] { return reg("erlang", 0.90, {{"c", 10}}); });
  add("erlang_c20_l0.70", [] { return reg("erlang", 0.70, {{"c", 20}}); });
  add("transfer_r4_l0.90",
      [] { return reg("transfer", 0.90, {{"r", 4}, {"T", 2}}); });
  add("staged_transfer_c3_l0.90", [] {
    return reg("staged-transfer", 0.90, {{"r", 4}, {"c", 3}, {"T", 2}});
  });
  add("heterogeneous_l0.90", [] {
    return reg("heterogeneous", 0.90,
               {{"f", 0.5}, {"mu_f", 1.5}, {"mu_s", 0.5}, {"T", 2}});
  });
  add("multi_class3_l0.90", [] {
    return std::make_unique<core::MultiClassWS>(
        0.90,
        std::vector<core::ProcessorClass>{
            {0.25, 1.6}, {0.5, 1.0}, {0.25, 0.4}},
        2);
  });
  // 10^4-unknown near-critical studies: explicit truncations (registry "L")
  // force the full discretization, and Auto dispatch routes dimensions this
  // large to the matrix-free Newton-Krylov path. no-stealing at λ = 0.995
  // doubles as an accuracy pin — its M/M/1 sojourn is exactly
  // 1/(1-λ) = 200.
  add("sharing_S1_L10239_l0.99",
      [] { return reg("sharing", 0.99, {{"S", 1}, {"L", 10239}}); },
      /*modern_only=*/true);
  add("no_stealing_L10499_l0.995",
      [] { return reg("no-stealing", 0.995, {{"L", 10499}}); },
      /*modern_only=*/true);
  return cases;
}

/// Pre-engine behaviour, used to record the committed baseline: explicit
/// relaxation (or the banded stiff path, which models opted into before)
/// at the constructed truncation, Newton polish unchanged.
core::FixedPointOptions legacy_options(const core::MeanFieldModel& model) {
  core::FixedPointOptions opts;
  opts.truncation = core::TruncationMode::Fixed;
  opts.method = model.stiff_bandwidth() > 0 ? ode::FixedPointMethod::Stiff
                                            : ode::FixedPointMethod::Relax;
  return opts;
}

/// Repetitions per case; the fastest is reported. Best-of timing measures
/// the code, not whatever else the machine was doing.
constexpr int kRepetitions = 5;

CaseResult time_case(const PerfCase& pc, bool legacy) {
  const auto model = pc.make();
  const core::FixedPointOptions opts =
      legacy ? legacy_options(*model) : core::FixedPointOptions{};
  CaseResult out;
  out.name = pc.name;
  (void)core::solve_fixed_point(*model, opts);  // untimed warmup
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = Clock::now();
    const auto r = core::solve_fixed_point(*model, opts);
    const double secs = seconds_since(t0);
    if (rep == 0 || secs < out.seconds) out.seconds = secs;
    out.rhs_evals = r.rhs_evals;  // deterministic: identical every rep
    out.sojourn = model->mean_sojourn(r.state);
    out.residual = r.residual;
    out.method = ode::to_string(r.method);
    out.final_truncation = r.final_truncation;
  }
  return out;
}

// --- λ-sweep continuation benchmark (modes sweep-warm / sweep-cold) ----

struct SweepModel {
  std::string name;      ///< case label in the table/JSON
  std::string reg_name;  ///< registry name
  core::ModelParams params;
};

/// Six models spanning the registry's solver paths (single-tail explicit,
/// thresholded variants, the segmented transfer family, task sharing).
std::vector<SweepModel> sweep_models() {
  return {{"simple", "simple", {}},
          {"threshold_T4", "threshold", {{"T", 4}}},
          {"multi_choice_d2", "multi-choice", {{"d", 2}, {"T", 3}}},
          {"multi_steal_k2", "multi-steal", {{"k", 2}, {"T", 4}}},
          {"transfer_r4", "transfer", {{"r", 4}, {"T", 2}}},
          {"sharing_S1", "sharing", {{"S", 1}}}};
}

/// 16 ascending arrival rates from the easy regime to near-critical.
std::vector<double> sweep_lambdas() {
  std::vector<double> ls;
  for (int j = 0; j < 16; ++j) ls.push_back(0.50 + 0.032 * j);
  return ls;
}

std::string sci(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::scientific << v;
  return os.str();
}

struct SweepChainResult {
  std::size_t rhs_evals = 0;
  std::vector<double> sojourns;
  std::size_t warm_rejections = 0;  ///< warm starts the safeguard discarded
};

/// Solves the model's whole λ chain once. warm = continuation through a
/// FixedPointContinuation; cold = standalone solve per point.
SweepChainResult run_sweep_chain(const SweepModel& sm,
                                 const std::vector<double>& lambdas,
                                 bool warm) {
  SweepChainResult out;
  core::FixedPointContinuation chain;
  for (std::size_t j = 0; j < lambdas.size(); ++j) {
    const auto model = reg(sm.reg_name, lambdas[j], sm.params);
    const auto r = warm ? chain.solve(*model)
                        : core::solve_fixed_point(*model);
    out.rhs_evals += r.rhs_evals;
    out.sojourns.push_back(model->mean_sojourn(r.state));
    if (warm && j > 0 && !r.warm) ++out.warm_rejections;
  }
  return out;
}

int run_sweep_mode(bool warm, const std::string& out_path) {
  const auto lambdas = sweep_lambdas();
  std::cout << "=== perf_ode: λ-sweep continuation ("
            << (warm ? "sweep-warm" : "sweep-cold") << " mode, "
            << sweep_models().size() << " models x " << lambdas.size()
            << " λ) ===\n\n";

  util::Table table(warm ? std::vector<std::string>{"model", "warm evals",
                                                    "cold evals", "redux",
                                                    "max |Δ sojourn|",
                                                    "rejects", "ms"}
                         : std::vector<std::string>{"model", "evals", "ms"});
  auto cases_json = util::Json::array();
  std::size_t total = 0, total_cold = 0;
  double total_seconds = 0.0, max_dev_all = 0.0;
  for (const auto& sm : sweep_models()) {
    const auto chain = run_sweep_chain(sm, lambdas, warm);
    // Best-of-N wall time for the whole chain (evals are deterministic).
    double secs = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto t0 = Clock::now();
      (void)run_sweep_chain(sm, lambdas, warm);
      const double s = seconds_since(t0);
      if (rep == 0 || s < secs) secs = s;
    }
    total += chain.rhs_evals;
    total_seconds += secs;

    auto j = util::Json::object();
    j["name"] = sm.name;
    j["rhs_evals"] = chain.rhs_evals;
    j["seconds"] = secs;
    j["sojourn_last"] = chain.sojourns.back();
    if (warm) {
      const auto cold = run_sweep_chain(sm, lambdas, false);
      double max_dev = 0.0;
      for (std::size_t k = 0; k < lambdas.size(); ++k) {
        max_dev = std::max(max_dev,
                           std::abs(chain.sojourns[k] - cold.sojourns[k]));
      }
      total_cold += cold.rhs_evals;
      max_dev_all = std::max(max_dev_all, max_dev);
      const double redux = static_cast<double>(cold.rhs_evals) /
                           static_cast<double>(chain.rhs_evals);
      j["cold_rhs_evals"] = cold.rhs_evals;
      j["eval_reduction"] = redux;
      j["max_sojourn_dev"] = max_dev;
      j["warm_rejections"] = chain.warm_rejections;
      table.add_row({sm.name, std::to_string(chain.rhs_evals),
                     std::to_string(cold.rhs_evals),
                     util::Table::fmt(redux, 2), sci(max_dev),
                     std::to_string(chain.warm_rejections),
                     util::Table::fmt(secs * 1e3, 2)});
    } else {
      table.add_row({sm.name, std::to_string(chain.rhs_evals),
                     util::Table::fmt(secs * 1e3, 2)});
    }
    cases_json.push_back(std::move(j));
  }
  table.print(std::cout);

  auto aggregate = util::Json::object();
  aggregate["name"] = "aggregate";
  aggregate["rhs_evals"] = total;
  aggregate["seconds"] = total_seconds;
  std::cout << "\naggregate: " << total << " rhs evals, "
            << util::Table::fmt(total_seconds * 1e3, 1) << " ms";
  if (warm) {
    const double redux =
        static_cast<double>(total_cold) / static_cast<double>(total);
    aggregate["cold_rhs_evals"] = total_cold;
    aggregate["eval_reduction"] = redux;
    aggregate["max_sojourn_dev"] = max_dev_all;
    std::cout << " (cold " << total_cold << " evals, "
              << util::Table::fmt(redux, 2) << "x fewer warm, max dev "
              << max_dev_all << ")";
  }
  std::cout << "\n\n";

  auto doc = util::Json::object();
  doc["schema"] = "lsm-ode-sweep-perf/1";
  doc["mode"] = warm ? "sweep-warm" : "sweep-cold";
  doc["workload"] =
      "6-model x 16-λ ascending sweep; rhs_evals is deterministic, wall "
      "time best-of-" +
      std::to_string(kRepetitions);
  doc["lambda_grid"] = "0.50 + 0.032j, j = 0..15";
  doc["sweep_cases"] = std::move(cases_json);
  doc["aggregate"] = std::move(aggregate);
  std::ofstream out(out_path, std::ios::trunc);
  out << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

/// Solves the model's whole λ grid through the SIMD-batched block driver.
core::BatchSweepResult run_batch_chain(const SweepModel& sm,
                                       const std::vector<double>& lambdas) {
  return core::batched_lambda_sweep(
      [&](double lam) { return reg(sm.reg_name, lam, sm.params); }, lambdas);
}

/// --mode=batch: the batched lane sweep against its scalar references. The
/// warm scalar chain is the incumbent (the previous tracked configuration),
/// so the headline columns are batch-vs-warm; cold totals are kept so the
/// historic warm-vs-cold reduction stays visible in the same file.
int run_batch_mode(const std::string& out_path) {
  const auto lambdas = sweep_lambdas();
  std::cout << "=== perf_ode: batched λ-sweep (batch mode, "
            << sweep_models().size() << " models x " << lambdas.size()
            << " λ) ===\n\n";

  util::Table table({"model", "batch evals", "warm evals", "cold evals",
                     "redux", "wall speedup", "max |Δ sojourn|", "fb",
                     "ms"});
  auto cases_json = util::Json::array();
  std::size_t total_batch = 0, total_warm = 0, total_cold = 0;
  std::size_t total_fallbacks = 0;
  double total_batch_secs = 0.0, total_warm_secs = 0.0, max_dev_all = 0.0;
  for (const auto& sm : sweep_models()) {
    const auto batch = run_batch_chain(sm, lambdas);
    double batch_secs = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto t0 = Clock::now();
      (void)run_batch_chain(sm, lambdas);
      const double s = seconds_since(t0);
      if (rep == 0 || s < batch_secs) batch_secs = s;
    }
    const auto warm = run_sweep_chain(sm, lambdas, true);
    double warm_secs = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto t0 = Clock::now();
      (void)run_sweep_chain(sm, lambdas, true);
      const double s = seconds_since(t0);
      if (rep == 0 || s < warm_secs) warm_secs = s;
    }
    const auto cold = run_sweep_chain(sm, lambdas, false);

    double max_dev = 0.0;
    for (std::size_t k = 0; k < lambdas.size(); ++k) {
      max_dev = std::max(
          max_dev, std::abs(batch.points[k].sojourn - warm.sojourns[k]));
    }
    total_batch += batch.rhs_evals;
    total_warm += warm.rhs_evals;
    total_cold += cold.rhs_evals;
    total_fallbacks += batch.fallback_solves;
    total_batch_secs += batch_secs;
    total_warm_secs += warm_secs;
    max_dev_all = std::max(max_dev_all, max_dev);
    const double redux = static_cast<double>(warm.rhs_evals) /
                         static_cast<double>(batch.rhs_evals);
    const double speedup = warm_secs / batch_secs;

    auto j = util::Json::object();
    j["name"] = sm.name;
    j["rhs_evals"] = batch.rhs_evals;
    j["seconds"] = batch_secs;
    j["sojourn_last"] = batch.points.back().sojourn;
    j["batch_passes"] = batch.batch_passes;
    j["fallback_solves"] = batch.fallback_solves;
    j["warm_rhs_evals"] = warm.rhs_evals;
    j["warm_seconds"] = warm_secs;
    j["cold_rhs_evals"] = cold.rhs_evals;
    j["batch_eval_reduction"] = redux;
    j["batch_wall_speedup"] = speedup;
    j["max_sojourn_dev"] = max_dev;
    table.add_row({sm.name, std::to_string(batch.rhs_evals),
                   std::to_string(warm.rhs_evals),
                   std::to_string(cold.rhs_evals), util::Table::fmt(redux, 2),
                   util::Table::fmt(speedup, 2), sci(max_dev),
                   std::to_string(batch.fallback_solves),
                   util::Table::fmt(batch_secs * 1e3, 2)});
    cases_json.push_back(std::move(j));
  }
  table.print(std::cout);

  const double agg_redux =
      static_cast<double>(total_warm) / static_cast<double>(total_batch);
  const double agg_speedup = total_warm_secs / total_batch_secs;
  auto aggregate = util::Json::object();
  aggregate["name"] = "aggregate";
  aggregate["rhs_evals"] = total_batch;
  aggregate["seconds"] = total_batch_secs;
  aggregate["warm_rhs_evals"] = total_warm;
  aggregate["warm_seconds"] = total_warm_secs;
  aggregate["cold_rhs_evals"] = total_cold;
  aggregate["batch_eval_reduction"] = agg_redux;
  aggregate["batch_wall_speedup"] = agg_speedup;
  aggregate["max_sojourn_dev"] = max_dev_all;
  aggregate["fallback_solves"] = total_fallbacks;
  std::cout << "\naggregate: batch " << total_batch << " rhs evals, "
            << util::Table::fmt(total_batch_secs * 1e3, 1) << " ms (warm "
            << total_warm << " evals, "
            << util::Table::fmt(total_warm_secs * 1e3, 1) << " ms -> "
            << util::Table::fmt(agg_redux, 2) << "x fewer evals, "
            << util::Table::fmt(agg_speedup, 2) << "x faster, max dev "
            << max_dev_all << ", " << total_fallbacks << " fallbacks)\n\n";

  auto doc = util::Json::object();
  doc["schema"] = "lsm-ode-sweep-perf/1";
  doc["mode"] = "batch";
  doc["workload"] =
      "6-model x 16-λ ascending sweep, SIMD-batched lanes vs scalar warm "
      "continuation; rhs_evals is deterministic, wall time best-of-" +
      std::to_string(kRepetitions);
  doc["lambda_grid"] = "0.50 + 0.032j, j = 0..15";
  doc["sweep_cases"] = std::move(cases_json);
  doc["aggregate"] = std::move(aggregate);
  std::ofstream out(out_path, std::ios::trunc);
  out << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

/// Pulls `"<key>": <v>` following `"name": "<name>"` out of a previously
/// written BENCH_ode.json. A full JSON parser is overkill for reading back
/// our own flat output.
double baseline_value(const std::string& doc, const std::string& name,
                      const std::string& key) {
  const auto at = doc.find("\"name\": \"" + name + "\"");
  if (at == std::string::npos) return 0.0;
  const std::string needle = "\"" + key + "\":";
  const auto pos = doc.find(needle, at);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path;
  bool legacy = false;
  int sweep = -1;  // -1 = not a sweep mode, else bool: warm?
  bool batch = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode=legacy") {
      legacy = true;
    } else if (arg == "--mode=current") {
      legacy = false;
    } else if (arg == "--mode=sweep-warm") {
      sweep = 1;
    } else if (arg == "--mode=sweep-cold") {
      sweep = 0;
    } else if (arg == "--mode=batch") {
      batch = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg
                << " (usage: perf_ode [out.json] [baseline.json]"
                   " [--mode=current|legacy|sweep-warm|sweep-cold|batch])\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (!positional.empty()) out_path = positional[0];
  if (positional.size() > 1) baseline_path = positional[1];
  if (out_path.empty()) {
    out_path =
        (sweep >= 0 || batch) ? "BENCH_ode_sweep.json" : "BENCH_ode.json";
  }
  if (batch) return run_batch_mode(out_path);
  if (sweep >= 0) return run_sweep_mode(sweep == 1, out_path);
  const std::string baseline =
      baseline_path.empty() ? "" : slurp(baseline_path);
  if (!baseline_path.empty() && baseline.empty()) {
    std::cerr << "warning: baseline " << baseline_path << " not readable\n";
  }

  std::cout << "=== perf_ode: fixed-point engine baseline ("
            << (legacy ? "legacy" : "current") << " mode) ===\n\n";
  util::Table table({"case", "method", "L", "rhs evals", "ms", "base evals",
                     "eval redux", "speedup"});
  auto cases_json = util::Json::array();
  std::size_t total_evals = 0;
  double total_seconds = 0.0;
  // Baseline comparisons only over the cases the baseline actually has:
  // the modern_only 10^4-dim cases would otherwise pollute the aggregate
  // redux/speedup columns with work the legacy engine never ran.
  std::size_t comp_evals = 0;
  double comp_seconds = 0.0;
  double comp_base_evals = 0.0;
  double comp_base_seconds = 0.0;
  for (const auto& pc : perf_cases()) {
    if (legacy && pc.modern_only) continue;
    CaseResult r = time_case(pc, legacy);
    r.baseline_evals = baseline_value(baseline, r.name, "rhs_evals");
    r.baseline_seconds = baseline_value(baseline, r.name, "seconds");
    total_evals += r.rhs_evals;
    total_seconds += r.seconds;
    const bool has_base = r.baseline_evals > 0.0;
    if (has_base) {
      comp_evals += r.rhs_evals;
      comp_base_evals += r.baseline_evals;
      if (r.baseline_seconds > 0.0) {
        comp_seconds += r.seconds;
        comp_base_seconds += r.baseline_seconds;
      }
    }
    table.add_row(
        {r.name, r.method, std::to_string(r.final_truncation),
         std::to_string(r.rhs_evals), util::Table::fmt(r.seconds * 1e3, 2),
         has_base ? util::Table::fmt(r.baseline_evals, 0) : "-",
         has_base
             ? util::Table::fmt(
                   r.baseline_evals / static_cast<double>(r.rhs_evals), 1)
             : "-",
         r.baseline_seconds > 0.0
             ? util::Table::fmt(r.baseline_seconds / r.seconds, 1)
             : "-"});
    auto j = util::Json::object();
    j["name"] = r.name;
    j["method"] = r.method;
    j["final_truncation"] = r.final_truncation;
    j["rhs_evals"] = r.rhs_evals;
    j["seconds"] = r.seconds;
    j["sojourn"] = r.sojourn;
    j["residual"] = r.residual;
    if (has_base) {
      j["baseline_rhs_evals"] = r.baseline_evals;
      j["eval_reduction"] =
          r.baseline_evals / static_cast<double>(r.rhs_evals);
    }
    if (r.baseline_seconds > 0.0) {
      j["baseline_seconds"] = r.baseline_seconds;
      j["speedup"] = r.baseline_seconds / r.seconds;
    }
    cases_json.push_back(std::move(j));
  }
  table.print(std::cout);

  auto aggregate = util::Json::object();
  aggregate["name"] = "aggregate";
  aggregate["rhs_evals"] = total_evals;
  aggregate["seconds"] = total_seconds;
  std::cout << "\naggregate: " << total_evals << " rhs evals, "
            << util::Table::fmt(total_seconds * 1e3, 1) << " ms";
  if (comp_base_evals > 0.0 && comp_evals > 0) {
    const double redux =
        comp_base_evals / static_cast<double>(comp_evals);
    aggregate["comparable_rhs_evals"] = comp_evals;
    aggregate["baseline_rhs_evals"] = comp_base_evals;
    aggregate["eval_reduction"] = redux;
    std::cout << " (baseline-comparable cases: "
              << util::Table::fmt(comp_base_evals, 0) << " baseline evals, "
              << util::Table::fmt(redux, 1) << "x fewer";
    if (comp_base_seconds > 0.0 && comp_seconds > 0.0) {
      aggregate["comparable_seconds"] = comp_seconds;
      aggregate["baseline_seconds"] = comp_base_seconds;
      aggregate["speedup"] = comp_base_seconds / comp_seconds;
      std::cout << ", "
                << util::Table::fmt(comp_base_seconds / comp_seconds, 1)
                << "x faster";
    }
    std::cout << ")";
  }
  std::cout << "\n\n";

  auto doc = util::Json::object();
  doc["schema"] = "lsm-ode-perf/1";
  doc["mode"] = legacy ? "legacy" : "current";
  doc["workload"] =
      "pinned model x lambda grid; rhs_evals is deterministic, wall time "
      "best-of-" +
      std::to_string(kRepetitions);
  doc["repetitions"] = static_cast<std::size_t>(kRepetitions);
  doc["ode_cases"] = std::move(cases_json);
  doc["aggregate"] = std::move(aggregate);
  std::ofstream out(out_path, std::ios::trunc);
  out << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
