// Figure F7 (Section 3.5): (a) heterogeneous processor speeds -- stealing
// lets slow processors shed load onto fast ones; (b) static systems --
// the limiting model predicts the drain time of an imbalanced initial
// load, with and without stealing.
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/general_arrival_ws.hpp"
#include "core/heterogeneous_ws.hpp"
#include "core/metrics.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F7: heterogeneous speeds and static drains", f);
  par::ThreadPool pool(util::worker_threads());

  std::cout << "(a) 25% fast (mu=2) / 75% slow (mu=0.8), threshold T = 2\n";
  util::Table het({"lambda", "Est E[T]", "Sim(128)", "E[load|fast]",
                   "E[load|slow]"});
  for (double lambda : {0.70, 0.90, 0.99}) {
    core::HeterogeneousWS model(lambda, 0.25, 2.0, 0.8, 2);
    const auto fp = core::solve_fixed_point(model);
    sim::SimConfig cfg;
    cfg.processors = 128;
    cfg.arrival_rate = lambda;
    cfg.fast_count = 32;
    cfg.fast_speed = 2.0;
    cfg.slow_speed = 0.8;
    cfg.policy = sim::StealPolicy::on_empty(2);
    het.add_row({util::Table::fmt(lambda, 2),
                 util::Table::fmt(model.mean_sojourn(fp.state)),
                 util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool)),
                 util::Table::fmt(model.mean_tasks_fast(fp.state)),
                 util::Table::fmt(model.mean_tasks_slow(fp.state))});
  }
  het.print(std::cout);

  std::cout << "\n(b) static drain: half the processors start with k tasks "
               "(model drain time vs simulated, n = 256)\n";
  util::Table drain({"initial k", "model steal", "sim steal", "model none",
                     "sim none"});
  for (std::size_t k : {4u, 8u, 16u}) {
    auto steal = core::GeneralArrivalWS::static_system(2, 64);
    auto none = core::GeneralArrivalWS::static_system(60, 64);
    const double t_model_steal =
        core::drain_time(steal, steal.loaded_state(0.5, k), 0.01);
    const double t_model_none =
        core::drain_time(none, none.loaded_state(0.5, k), 0.01);

    auto sim_drain = [&](bool with_steal) {
      sim::SimConfig cfg;
      cfg.processors = 256;
      cfg.arrival_rate = 0.0;
      cfg.initial_tasks = k;
      cfg.loaded_count = 128;
      cfg.policy = with_steal ? sim::StealPolicy::on_empty(2)
                              : sim::StealPolicy::none();
      cfg.horizon = 1e6;
      cfg.warmup = 0.0;
      cfg.seed = 42;
      double acc = 0.0;
      for (std::size_t rep = 0; rep < f.replications; ++rep) {
        cfg.seed = 42 + rep;
        acc += sim::simulate(cfg).drain_time;
      }
      return acc / static_cast<double>(f.replications);
    };

    drain.add_row({std::to_string(k), util::Table::fmt(t_model_steal, 2),
                   util::Table::fmt(sim_drain(true), 2),
                   util::Table::fmt(t_model_none, 2),
                   util::Table::fmt(sim_drain(false), 2)});
  }
  drain.print(std::cout);
  std::cout
      << "\nnotes: (1) the model drains the *mean* load to 1% of a task per\n"
         "processor, while the simulated figure is the makespan (last\n"
         "completion) -- a max over exponentials that the limit never quite\n"
         "reaches; (2) stealing accelerates the bulk of the drain but can\n"
         "lengthen the makespan slightly at low imbalance, because spreading\n"
         "the final tasks over more processors takes a max over more\n"
         "exponential stragglers.\n";
  return 0;
}
