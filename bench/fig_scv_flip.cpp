// Figure F11: stealing vs sharing under high job-size variability -- the
// redo of fig_sharing_vs_stealing with the phase-type service axis swept
// over SCV in {1, 2, 4, 10} at fixed mean 1 (balanced-means H2 fits).
//
// The paper's exponential-service comparison is not robust to service
// variability: steal-on-empty migrates work only when a processor drains,
// while sender-initiated sharing forwards arrivals away from long jobs
// the moment a queue builds. As the SCV grows, the E[T] ranking between
// the two policies flips at loads where exponential service favored the
// other policy (cf. Van Houdt, arXiv:1810.13186). Each mean-field value
// is validated against an n = 128 discrete-event run of the same
// phase-type sampler.
//
// LSM_SCV_SMOKE=1 shrinks the grid to 2 SCVs x 2 lambdas, mean-field
// only: the scripts/check.sh smoke leg, fast enough to run under the
// fault injector.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/phase_type.hpp"
#include "sim/distributions.hpp"

namespace {

bool smoke() {
  const char* v = std::getenv("LSM_SCV_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct ServicePoint {
  double scv;
  std::string spec;  ///< registry service spec / sampler source
};

}  // namespace

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header(
      "Fig F11: stealing vs sharing under high service variability (SCV "
      "sweep)",
      f);
  constexpr std::size_t kShareThreshold = 2;

  const std::vector<ServicePoint> services =
      smoke() ? std::vector<ServicePoint>{{1.0, "exp"}, {4.0, "hyperexp:4"}}
              : std::vector<ServicePoint>{{1.0, "exp"},
                                          {2.0, "hyperexp:2"},
                                          {4.0, "hyperexp:4"},
                                          {10.0, "hyperexp:10"}};

  exp::ExperimentSpec spec;
  spec.name = "fig_scv_flip";
  spec.fidelity = f;
  spec.lambdas = smoke() ? std::vector<double>{0.80, 0.90}
                         : std::vector<double>{0.60, 0.80, 0.90, 0.95};
  spec.outputs.tail_limit = 4;
  spec.outputs.simulate = !smoke();
  for (const auto& svc : services) {
    const auto service = sim::ServiceDistribution::phase_type(
        core::parse_service(svc.spec));
    {
      exp::GridEntry steal;
      steal.label = "steal-" + svc.spec;
      steal.model = "simple";
      steal.params = {{"service", svc.spec}};
      steal.config.processors = 128;
      steal.config.service = service;
      steal.config.policy = sim::StealPolicy::on_empty(2);
      spec.add(std::move(steal));
    }
    {
      exp::GridEntry share;
      share.label = "share-" + svc.spec;
      share.model = "sharing";
      share.params = {{"S", static_cast<double>(kShareThreshold)},
                      {"service", svc.spec}};
      share.config.processors = 128;
      share.config.service = service;
      share.config.policy = sim::StealPolicy::sharing(kShareThreshold);
      spec.add(std::move(share));
    }
  }

  const auto report = exp::SweepRunner().run(spec);

  util::Table table({"lambda", "scv", "steal E[T]", "share E[T]", "winner",
                     "sim steal E[T]", "sim share E[T]", "sim agrees"});
  std::size_t sim_cells = 0;
  std::size_t sim_agree = 0;
  std::vector<double> flip_lambdas;
  for (const double lambda : spec.lambdas) {
    int low_scv_sign = 0;
    for (const auto& svc : services) {
      const auto& steal = report.at("steal-" + svc.spec, lambda);
      const auto& share = report.at("share-" + svc.spec, lambda);
      const int sign = steal.est_sojourn < share.est_sojourn ? 1 : -1;
      if (svc.scv == 1.0) low_scv_sign = sign;
      if (svc.scv >= 4.0 && sign != low_scv_sign &&
          (flip_lambdas.empty() || flip_lambdas.back() != lambda)) {
        flip_lambdas.push_back(lambda);
      }
      std::string sim_steal = "-";
      std::string sim_share = "-";
      std::string agrees = "-";
      if (steal.has_sim && share.has_sim) {
        // The mean-field estimate should land within the replication CI
        // plus the O(1/n) finite-size allowance.
        bool ok = true;
        for (const auto* r : {&steal, &share}) {
          ++sim_cells;
          const double band = std::max(r->sim_sojourn.half_width,
                                       0.02 * r->est_sojourn);
          const bool cell_ok =
              std::abs(r->sim_sojourn.mean - r->est_sojourn) <= 3.0 * band;
          sim_agree += cell_ok ? 1 : 0;
          ok = ok && cell_ok;
        }
        sim_steal = util::Table::fmt(steal.sim_sojourn.mean) + "+-" +
                    util::Table::fmt(steal.sim_sojourn.half_width, 3);
        sim_share = util::Table::fmt(share.sim_sojourn.mean) + "+-" +
                    util::Table::fmt(share.sim_sojourn.half_width, 3);
        agrees = ok ? "yes" : "NO";
      }
      table.add_row({util::Table::fmt(lambda, 2), util::Table::fmt(svc.scv, 1),
                     util::Table::fmt(steal.est_sojourn),
                     util::Table::fmt(share.est_sojourn),
                     steal.est_sojourn < share.est_sojourn ? "steal" : "share",
                     sim_steal, sim_share, agrees});
    }
  }
  table.print(std::cout);

  std::cout << "\nflip: ";
  if (flip_lambdas.empty()) {
    std::cout << "NOT OBSERVED on this grid";
  } else {
    std::cout << "ranking flips between SCV=1 and SCV>=4 at lambda = {";
    for (std::size_t i = 0; i < flip_lambdas.size(); ++i) {
      std::cout << (i != 0 ? ", " : "")
                << util::Json::number_to_string(flip_lambdas[i]);
    }
    std::cout << "}";
  }
  std::cout << "\n";
  if (sim_cells != 0) {
    std::cout << "sim agreement: " << sim_agree << "/" << sim_cells
              << " cells within 3 CI half-widths (n = 128)\n";
  }
  std::cout << "\nreading: with exponential service the comparison is "
               "load-dependent but stable; as the SCV grows, long jobs pin "
               "steal-on-empty processors while sharing keeps routing new "
               "arrivals around them, and the winner changes at fixed "
               "lambda\n"
            << report.summary() << "\n";
  return 0;
}
