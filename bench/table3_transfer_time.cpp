// Reproduces Table 3: stealing with transfer time r = 0.25 (mean transfer
// 4 service units) for thresholds T = 3..6. For each lambda, simulations
// at n = 128 sit next to the fixed-point estimates; the best threshold is
// T = 4 ~ 1/r at small arrival rates and grows with lambda. Paper row
// lambda = 0.95: Sim/Est = 13.162/13.106 (T=3) ... 13.067/12.925 (T=6).
//
// Runs through exp::SweepRunner (sharded, cached, manifest/CSV
// artifacts; estimates chain warm along the λ grid).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Table 3: transfer times (r = 0.25), threshold sweep",
                      f);
  constexpr double kRate = 0.25;
  const std::size_t thresholds[] = {3u, 4u, 5u, 6u};

  exp::ExperimentSpec spec;
  spec.name = "table3_transfer_time";
  spec.fidelity = f;
  spec.lambdas = {0.50, 0.70, 0.80, 0.90, 0.95};
  for (const std::size_t T : thresholds) {
    exp::GridEntry e;
    e.label = "T" + std::to_string(T);
    e.model = "transfer";
    e.params = {{"r", kRate}, {"T", static_cast<double>(T)}};
    e.config.processors = 128;
    e.config.policy = sim::StealPolicy::with_transfer(1.0 / kRate, T);
    spec.add(std::move(e));
  }

  const auto report = exp::SweepRunner().run(spec);

  std::vector<std::string> header = {"lambda"};
  for (const std::size_t T : thresholds) {
    header.push_back("T=" + std::to_string(T) + " Sim(128)");
    header.push_back("T=" + std::to_string(T) + " Est");
  }
  header.push_back("best T (Est)");
  util::Table table(std::move(header));

  for (const double lambda : spec.lambdas) {
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    double best_w = 1e300;
    std::size_t best_T = 0;
    for (const std::size_t T : thresholds) {
      const std::string label = "T" + std::to_string(T);
      row.push_back(util::Table::fmt(report.sim(label, lambda)));
      const double est = report.estimate(label, lambda);
      row.push_back(util::Table::fmt(est));
      if (est < best_w) {
        best_w = est;
        best_T = T;
      }
    }
    row.push_back(std::to_string(best_T));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper: best threshold T = 4 = 1/r at small lambda, larger "
               "at higher arrival rates\n"
            << report.summary() << "\n";
  return 0;
}
