// Shared scaffolding for the table/figure reproduction benches.
//
// Default fidelity is scaled for CI speed (the table *shape* is already
// clear); LSM_PAPER=1 switches to the paper's 10 x 100,000 s methodology.
#pragma once

#include <cstddef>
#include <iostream>

#include "parallel/thread_pool.hpp"
#include "sim/replicate.hpp"
#include "sim/simulator.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace lsm::bench {

struct Fidelity {
  std::size_t replications;
  double horizon;
  double warmup;
  const char* label;
};

inline Fidelity fidelity() {
  if (util::paper_fidelity()) {
    return {10, 100000.0, 10000.0, "paper (10 x 100,000s, 10,000s warmup)"};
  }
  return {3, 20000.0, 2000.0, "quick (3 x 20,000s, 2,000s warmup)"};
}

/// Mean sojourn from a replicated simulation at the bench's fidelity.
inline double sim_mean_sojourn(sim::SimConfig cfg, const Fidelity& f,
                               par::ThreadPool& pool, std::uint64_t seed = 42) {
  cfg.horizon = f.horizon;
  cfg.warmup = f.warmup;
  cfg.seed = seed;
  return sim::replicate(cfg, f.replications, pool).sojourn.mean;
}

inline void print_header(const char* title, const Fidelity& f) {
  std::cout << "=== " << title << " ===\n"
            << "fidelity: " << f.label << "\n\n";
}

}  // namespace lsm::bench
