// Shared scaffolding for the table/figure reproduction benches.
//
// Fidelity presets live in exp::Fidelity: CI-speed by default, the
// paper's 10 x 100,000 s methodology under LSM_PAPER=1. Table/figure
// benches that sweep a model x lambda grid should build an
// exp::ExperimentSpec and run it through exp::SweepRunner (sharded,
// cached, with manifest/CSV artifacts; the mean-field column warm-starts
// each λ from the previous point's converged state); the helpers here
// remain for one-off simulations that do not fit a grid.
#pragma once

#include <cstddef>
#include <iostream>

#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "exp/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/replicate.hpp"
#include "sim/simulator.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace lsm::bench {

using Fidelity = exp::Fidelity;

inline Fidelity fidelity() { return exp::Fidelity::from_env(); }

/// Mean sojourn from a replicated simulation at the bench's fidelity.
inline double sim_mean_sojourn(sim::SimConfig cfg, const Fidelity& f,
                               par::ThreadPool& pool, std::uint64_t seed = 42) {
  cfg.horizon = f.horizon;
  cfg.warmup = f.warmup;
  cfg.seed = seed;
  return sim::replicate(cfg, sim::ReplicateOptions{
                                 .replications = f.replications,
                                 .pool = &pool})
      .sojourn.mean;
}

inline void print_header(const char* title, const Fidelity& f) {
  std::cout << "=== " << title << " ===\n"
            << "fidelity: " << f.label << "\n\n";
}

}  // namespace lsm::bench
