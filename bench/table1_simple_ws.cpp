// Reproduces Table 1: simulations vs fixed-point estimates for the
// simplest WS model (steal one task on empty, T = 2), lambda from 0.50 to
// 0.99, n in {16, 32, 64, 128}. Paper reference values:
//
//   lambda  Sim16   Sim32   Sim64   Sim128  Estimate RelErr%
//   0.50    1.631   1.626   1.622   1.620   1.618    0.15
//   0.99    17.863  14.368  12.183  11.306  10.462   7.46
#include <iostream>

#include "bench_common.hpp"
#include "core/threshold_ws.hpp"
#include "util/statistics.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Table 1: simplest WS model, sim vs estimate", f);
  par::ThreadPool pool(util::worker_threads());

  util::Table table({"lambda", "Sim(16)", "Sim(32)", "Sim(64)", "Sim(128)",
                     "Estimate", "RelErr(%)"});
  for (double lambda : {0.50, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    core::SimpleWS model(lambda);
    const double estimate = model.analytic_sojourn();
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    double sim128 = 0.0;
    for (std::size_t n : {16u, 32u, 64u, 128u}) {
      sim::SimConfig cfg;
      cfg.processors = n;
      cfg.arrival_rate = lambda;
      cfg.policy = sim::StealPolicy::on_empty(2);
      const double w = bench::sim_mean_sojourn(cfg, f, pool);
      row.push_back(util::Table::fmt(w));
      sim128 = w;
    }
    row.push_back(util::Table::fmt(estimate));
    row.push_back(util::Table::fmt(util::relative_error_pct(sim128, estimate), 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper: estimates 1.618 / 2.107 / 2.562 / 3.541 / 4.887 / "
               "10.462; error grows with lambda, shrinks with n\n";
  return 0;
}
