// Reproduces Table 1: simulations vs fixed-point estimates for the
// simplest WS model (steal one task on empty, T = 2), lambda from 0.50 to
// 0.99, n in {16, 32, 64, 128}. Paper reference values:
//
//   lambda  Sim16   Sim32   Sim64   Sim128  Estimate RelErr%
//   0.50    1.631   1.626   1.622   1.620   1.618    0.15
//   0.99    17.863  14.368  12.183  11.306  10.462   7.46
//
// Runs through exp::SweepRunner: the model x lambda grid is sharded across
// pool, completed cells are cached on disk, and the run manifest/CSV land
// in the artifact directory.
#include <iostream>

#include "bench_common.hpp"
#include "util/statistics.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Table 1: simplest WS model, sim vs estimate", f);

  exp::ExperimentSpec spec;
  spec.name = "table1_simple_ws";
  spec.fidelity = f;
  spec.lambdas = {0.50, 0.70, 0.80, 0.90, 0.95, 0.99};
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    exp::GridEntry e;
    e.label = "sim" + std::to_string(n);
    e.config.processors = n;
    e.config.policy = sim::StealPolicy::on_empty(2);
    e.estimate = false;
    spec.add(std::move(e));
  }
  {
    exp::GridEntry e;
    e.label = "est";
    e.model = "simple";
    e.simulate = false;
    spec.add(std::move(e));
  }

  const auto report = exp::SweepRunner().run(spec);

  util::Table table({"lambda", "Sim(16)", "Sim(32)", "Sim(64)", "Sim(128)",
                     "Estimate", "RelErr(%)"});
  for (const double lambda : spec.lambdas) {
    const double estimate = report.estimate("est", lambda);
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    for (const std::size_t n : {16u, 32u, 64u, 128u}) {
      row.push_back(util::Table::fmt(
          report.sim("sim" + std::to_string(n), lambda)));
    }
    row.push_back(util::Table::fmt(estimate));
    row.push_back(util::Table::fmt(
        util::relative_error_pct(report.sim("sim128", lambda), estimate), 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper: estimates 1.618 / 2.107 / 2.562 / 3.541 / 4.887 / "
               "10.462; error grows with lambda, shrinks with n\n"
            << report.summary() << "\n";
  return 0;
}
