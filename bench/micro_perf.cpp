// Microbenchmarks (google-benchmark) for the numeric kernels and the
// discrete-event simulator: derivative evaluation cost by model and
// truncation, stepper cost, fixed-point solve latency, event throughput.
#include <benchmark/benchmark.h>

#include "core/erlang_ws.hpp"
#include "core/fixed_point.hpp"
#include "core/rebalance_ws.hpp"
#include "core/threshold_ws.hpp"
#include "core/transfer_ws.hpp"
#include "ode/banded.hpp"
#include "ode/implicit.hpp"
#include "ode/integrator.hpp"
#include "ode/linalg.hpp"
#include "ode/steppers.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/xoshiro.hpp"

namespace {

using namespace lsm;

void BM_Xoshiro(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_ExponentialSample(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
}
BENCHMARK(BM_ExponentialSample);

void BM_SimpleWSDeriv(benchmark::State& state) {
  core::SimpleWS model(0.9, static_cast<std::size_t>(state.range(0)));
  const auto s = model.mm1_state();
  ode::State ds(s.size());
  for (auto _ : state) {
    model.deriv(0.0, s, ds);
    benchmark::DoNotOptimize(ds.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_SimpleWSDeriv)->Arg(64)->Arg(256)->Arg(1024);

void BM_RebalanceDeriv(benchmark::State& state) {
  // O(L^2) interaction kernel; the heaviest derivative in the library.
  core::RebalanceWS model(0.9, 1.0, static_cast<std::size_t>(state.range(0)));
  const auto s = model.mm1_state();
  ode::State ds(s.size());
  for (auto _ : state) {
    model.deriv(0.0, s, ds);
    benchmark::DoNotOptimize(ds.data());
  }
}
BENCHMARK(BM_RebalanceDeriv)->Arg(64)->Arg(128);

void BM_Rk4Step(benchmark::State& state) {
  core::SimpleWS model(0.9, 256);
  ode::RungeKutta4 rk4;
  auto s = model.mm1_state();
  for (auto _ : state) {
    rk4.step(model, 0.0, s, 0.01);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_Rk4Step);

void BM_FixedPointSolve(benchmark::State& state) {
  for (auto _ : state) {
    core::SimpleWS model(0.9);
    auto fp = core::solve_fixed_point(model);
    benchmark::DoNotOptimize(fp.residual);
  }
}
BENCHMARK(BM_FixedPointSolve)->Unit(benchmark::kMillisecond);

void BM_TransferFixedPointSolve(benchmark::State& state) {
  for (auto _ : state) {
    core::TransferTimeWS model(0.9, 0.25, 4);
    auto fp = core::solve_fixed_point(model);
    benchmark::DoNotOptimize(fp.residual);
  }
}
BENCHMARK(BM_TransferFixedPointSolve)->Unit(benchmark::kMillisecond);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ode::Matrix a(n, n);
  util::Xoshiro256 rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 4.0 : rng.uniform() * 0.1;
    }
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    ode::LuSolver lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BandedLuSolve(benchmark::State& state) {
  // Banded factorization at the Erlang model's shape: n x n, band c.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t band = 20;
  ode::BandedMatrix a(n, band, band);
  util::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j_lo = i >= band ? i - band : 0;
    const std::size_t j_hi = std::min(i + band, n - 1);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      a.set(i, j, i == j ? 4.0 : 0.05 * rng.uniform());
    }
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    ode::BandedLuSolver lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_BandedLuSolve)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_StiffErlangFixedPoint(benchmark::State& state) {
  // Full pseudo-transient solve of the c = 10 stage model at lambda = 0.9
  // (the explicit relaxation takes ~40x longer).
  for (auto _ : state) {
    core::ErlangServiceWS model(0.9, 10);
    auto fp = core::solve_fixed_point(model);
    benchmark::DoNotOptimize(fp.residual);
  }
}
BENCHMARK(BM_StiffErlangFixedPoint)->Unit(benchmark::kMillisecond);

void BM_BandedFdJacobian(benchmark::State& state) {
  core::ErlangServiceWS model(0.9, 10);
  const auto s = model.empty_state();
  for (auto _ : state) {
    auto jac = ode::banded_fd_jacobian(model, 0.0, s, 10, 10);
    benchmark::DoNotOptimize(jac.get(5, 5));
  }
}
BENCHMARK(BM_BandedFdJacobian)->Unit(benchmark::kMillisecond);

void BM_EventQueue(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    sim::EventQueue<int> q;
    for (int i = 0; i < 1000; ++i) q.push(rng.uniform(), i);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().payload);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EventQueue);

void BM_SimulatorThroughput(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.processors = 64;
  cfg.arrival_rate = 0.9;
  cfg.policy = sim::StealPolicy::on_empty(2);
  cfg.horizon = 500.0;
  cfg.warmup = 50.0;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    const auto res = sim::simulate(cfg);
    // Arrivals + completions + steal attempts ~ total dispatched events.
    events += res.arrivals + res.completions + res.steal_attempts;
    benchmark::DoNotOptimize(res.completions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulated events");
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
