// Reproduces Table 4: one victim choice vs two (T = 2, n = 128) plus the
// two-choice fixed-point estimate. Paper:
//
//   lambda  Sim 1-choice  Sim 2-choice  Est 2-choice
//   0.50    1.620         1.436         1.433
//   0.99    11.306        4.597         4.011
//
// Runs through exp::SweepRunner (sharded, cached, manifest/CSV
// artifacts; estimates chain warm along the λ grid).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Table 4: one choice vs two choices (T = 2, n = 128)",
                      f);

  exp::ExperimentSpec spec;
  spec.name = "table4_two_choices";
  spec.fidelity = f;
  spec.lambdas = {0.50, 0.70, 0.80, 0.90, 0.95, 0.99};
  {
    exp::GridEntry one;
    one.label = "d1";
    one.model = "simple";
    one.config.processors = 128;
    one.config.policy = sim::StealPolicy::on_empty(2, 1);
    spec.add(std::move(one));
  }
  {
    exp::GridEntry two;
    two.label = "d2";
    two.model = "multi-choice";
    two.params = {{"d", 2.0}, {"T", 2.0}};
    two.config.processors = 128;
    two.config.policy = sim::StealPolicy::on_empty(2, 2);
    spec.add(std::move(two));
  }

  const auto report = exp::SweepRunner().run(spec);

  util::Table table({"lambda", "Sim(128) 1 choice", "Sim(128) 2 choices",
                     "Est 1 choice", "Est 2 choices"});
  for (const double lambda : spec.lambdas) {
    table.add_row({util::Table::fmt(lambda, 2),
                   util::Table::fmt(report.sim("d1", lambda)),
                   util::Table::fmt(report.sim("d2", lambda)),
                   util::Table::fmt(report.estimate("d1", lambda)),
                   util::Table::fmt(report.estimate("d2", lambda))});
  }
  table.print(std::cout);
  std::cout << "\npaper 2-choice estimates: 1.433 / 1.673 / 1.864 / 2.220 / "
               "2.640 / 4.011; most of the gain comes from the first probe\n"
            << report.summary() << "\n";
  return 0;
}
