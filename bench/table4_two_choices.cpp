// Reproduces Table 4: one victim choice vs two (T = 2, n = 128) plus the
// two-choice fixed-point estimate. Paper:
//
//   lambda  Sim 1-choice  Sim 2-choice  Est 2-choice
//   0.50    1.620         1.436         1.433
//   0.99    11.306        4.597         4.011
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/multi_choice_ws.hpp"
#include "core/threshold_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Table 4: one choice vs two choices (T = 2, n = 128)",
                      f);
  par::ThreadPool pool(util::worker_threads());

  util::Table table({"lambda", "Sim(128) 1 choice", "Sim(128) 2 choices",
                     "Est 1 choice", "Est 2 choices"});
  for (double lambda : {0.50, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    for (std::size_t d : {1u, 2u}) {
      sim::SimConfig cfg;
      cfg.processors = 128;
      cfg.arrival_rate = lambda;
      cfg.policy = sim::StealPolicy::on_empty(2, d);
      row.push_back(util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool)));
    }
    row.push_back(util::Table::fmt(core::SimpleWS(lambda).analytic_sojourn()));
    core::MultiChoiceWS two(lambda, 2, 2);
    row.push_back(util::Table::fmt(core::fixed_point_sojourn(two)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper 2-choice estimates: 1.433 / 1.673 / 1.864 / 2.220 / "
               "2.640 / 4.011; most of the gain comes from the first probe\n";
  return 0;
}
