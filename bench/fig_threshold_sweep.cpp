// Figure F3 (Section 2.3 ablation): expected time in system across steal
// thresholds T = 2..8 and arrival rates, from the fixed point, with a
// simulated spot check at lambda = 0.9. With instant transfers, lower
// thresholds always help; the threshold only pays off once transfers cost
// time (see table3/fig for that crossover).
//
// Runs through exp::SweepRunner (sharded, cached, manifest/CSV
// artifacts; estimates chain warm along the λ grid).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F3: threshold sweep (closed-form estimates)", f);

  exp::ExperimentSpec sweep;
  sweep.name = "fig_threshold_sweep";
  sweep.fidelity = f;
  sweep.lambdas = {0.50, 0.80, 0.90, 0.95, 0.99};
  for (std::size_t T = 2; T <= 8; ++T) {
    exp::GridEntry e;
    e.label = "T" + std::to_string(T);
    e.model = "threshold";
    e.params = {{"T", static_cast<double>(T)}};
    e.simulate = false;
    sweep.add(std::move(e));
  }
  const auto estimates = exp::SweepRunner().run(sweep);

  std::vector<std::string> header = {"lambda"};
  for (std::size_t T = 2; T <= 8; ++T) {
    header.push_back("T=" + std::to_string(T));
  }
  util::Table table(std::move(header));
  for (const double lambda : sweep.lambdas) {
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    for (std::size_t T = 2; T <= 8; ++T) {
      row.push_back(util::Table::fmt(
          estimates.estimate("T" + std::to_string(T), lambda)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  exp::ExperimentSpec check;
  check.name = "fig_threshold_sweep_spot";
  check.fidelity = f;
  check.lambdas = {0.9};
  for (const std::size_t T : {2u, 4u, 6u}) {
    exp::GridEntry e;
    e.label = "T" + std::to_string(T);
    e.model = "threshold";
    e.params = {{"T", static_cast<double>(T)}};
    e.config.processors = 128;
    e.config.policy = sim::StealPolicy::on_empty(T);
    check.add(std::move(e));
  }
  const auto spot_report = exp::SweepRunner().run(check);

  std::cout << "\nsimulated spot check, lambda = 0.9, n = 128:\n";
  util::Table spot({"T", "Sim(128)", "Estimate"});
  for (const std::size_t T : {2u, 4u, 6u}) {
    const std::string label = "T" + std::to_string(T);
    spot.add_row({std::to_string(T),
                  util::Table::fmt(spot_report.sim(label, 0.9)),
                  util::Table::fmt(spot_report.estimate(label, 0.9))});
  }
  spot.print(std::cout);
  std::cout << estimates.summary() << "\n"
            << spot_report.summary() << "\n";
  return 0;
}
