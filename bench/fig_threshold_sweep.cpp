// Figure F3 (Section 2.3 ablation): expected time in system across steal
// thresholds T = 2..8 and arrival rates, from the closed-form fixed point,
// with a simulated spot check at lambda = 0.9. With instant transfers,
// lower thresholds always help; the threshold only pays off once
// transfers cost time (see table3/fig for that crossover).
#include <iostream>

#include "bench_common.hpp"
#include "core/threshold_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F3: threshold sweep (closed-form estimates)", f);
  par::ThreadPool pool(util::worker_threads());

  std::vector<std::string> header = {"lambda"};
  for (std::size_t T = 2; T <= 8; ++T) header.push_back("T=" + std::to_string(T));
  util::Table table(std::move(header));

  for (double lambda : {0.50, 0.80, 0.90, 0.95, 0.99}) {
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    for (std::size_t T = 2; T <= 8; ++T) {
      row.push_back(util::Table::fmt(core::ThresholdWS(lambda, T).analytic_sojourn()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nsimulated spot check, lambda = 0.9, n = 128:\n";
  util::Table spot({"T", "Sim(128)", "Estimate"});
  for (std::size_t T : {2u, 4u, 6u}) {
    sim::SimConfig cfg;
    cfg.processors = 128;
    cfg.arrival_rate = 0.9;
    cfg.policy = sim::StealPolicy::on_empty(T);
    spot.add_row({std::to_string(T),
                  util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool)),
                  util::Table::fmt(core::ThresholdWS(0.9, T).analytic_sojourn())});
  }
  spot.print(std::cout);
  return 0;
}
