// Figure F9 (spectral companion to Section 4): relaxation of each policy's
// mean-field dynamics. For every policy and load: the spectral gap of the
// linearization at the fixed point, the implied relaxation time, the
// measured time for an empty system to settle within 1e-3 (L1), and the
// spectral lower-bound estimate for that settle time. Practical reading:
// how much simulation warmup each regime needs, and how fast each policy
// absorbs load shocks.
#include <iostream>
#include <memory>

#include "analysis/spectral.hpp"
#include "analysis/transient.hpp"
#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/registry.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F9: relaxation spectra of the mean-field dynamics",
                      f);

  const struct {
    const char* name;
    core::ModelParams params;
  } cases[] = {
      {"no-stealing", {}},
      {"simple", {}},
      {"threshold", {{"T", 4}}},
      {"multi-choice", {{"d", 2}}},
      {"repeated", {{"r", 2.0}}},
      {"composed", {{"T", 4}, {"d", 2}, {"k", 2}, {"B", 2}, {"r", 1.0}}},
  };

  for (double lambda : {0.70, 0.90}) {
    std::cout << "lambda = " << lambda << "\n";
    util::Table table({"policy", "gap", "tau = 1/gap", "settle(1e-3)",
                       "spectral est."});
    for (const auto& c : cases) {
      const auto model = core::make_model(c.name, lambda, c.params);
      const auto fp = core::solve_fixed_point(*model);
      const auto spec = analysis::dominant_relaxation_mode(*model, fp.state);
      const auto tr = analysis::time_to_steady_state(
          *model, model->empty_state(), fp.state, 1e-3);
      const double est = spec.converged && spec.spectral_gap > 0.0
                             ? analysis::spectral_settle_estimate(
                                   tr.initial_distance, 1e-3,
                                   spec.spectral_gap)
                             : 0.0;
      table.add_row({c.name,
                     spec.converged ? util::Table::fmt(spec.spectral_gap, 4)
                                    : "-",
                     spec.converged
                         ? util::Table::fmt(spec.relaxation_time, 1)
                         : "-",
                     tr.settled ? util::Table::fmt(tr.settle_time, 1) : ">max",
                     est > 0.0 ? util::Table::fmt(est, 1) : "-"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "reading: better stealing policies both shorten queues AND "
               "recover faster from shocks; the gap collapses as lambda -> 1, "
               "which is why the paper's lambda = 0.99 simulations need long "
               "warmups\n";
  return 0;
}
