// Figure F5 (Section 2.4 ablation): preemptive stealing. A processor with
// j <= B tasks left steals from victims with >= j + T tasks. Sweeps B and
// T, checks the predicted tail ratio lambda / (1 + lambda - pi_{B+2}),
// and spot-checks against simulation.
#include <iostream>

#include "bench_common.hpp"
#include "core/fixed_point.hpp"
#include "core/metrics.hpp"
#include "core/preemptive_ws.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F5: preemptive stealing (B, T) sweep", f);
  par::ThreadPool pool(util::worker_threads());

  for (double lambda : {0.90, 0.95}) {
    std::cout << "lambda = " << lambda << "\n";
    util::Table table({"B", "T", "Est E[T]", "Sim(128)", "tail ratio",
                       "predicted ratio"});
    for (std::size_t T : {2u, 4u}) {
      for (std::size_t B : {0u, 1u, 2u, 4u}) {
        core::PreemptiveWS model(lambda, B, T);
        const auto fp = core::solve_fixed_point(model);
        std::string sim_cell = "-";
        if (lambda == 0.90 && (B == 0 || B == 2)) {
          sim::SimConfig cfg;
          cfg.processors = 128;
          cfg.arrival_rate = lambda;
          cfg.policy = sim::StealPolicy::preemptive(B, T);
          sim_cell = util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool));
        }
        table.add_row(
            {std::to_string(B), std::to_string(T),
             util::Table::fmt(model.mean_sojourn(fp.state)), sim_cell,
             util::Table::fmt(core::tail_decay_ratio(fp.state, B + T + 3), 4),
             util::Table::fmt(model.predicted_tail_ratio(fp.state), 4)});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "observation: stealing before empty (B > 0) smooths load; "
               "the tails beyond B+T decay at lambda/(1+lambda-pi_{B+2})\n";
  return 0;
}
