// Figure F8 (beyond the paper's tables; Section 3's closing remark that
// "the extensions can be combined as desired"): cumulative ablation of the
// composed policy at high load -- start from plain threshold stealing and
// add victim choices, multi-steal, preemptive triggering, and retries one
// at a time. Model predictions alongside n = 128 simulations.
#include <iostream>

#include "bench_common.hpp"
#include "core/composed_ws.hpp"
#include "core/fixed_point.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header("Fig F8: composed-policy ablation (lambda = 0.95)", f);
  par::ThreadPool pool(util::worker_threads());
  const double lambda = 0.95;

  struct Step {
    const char* label;
    core::ComposedPolicy policy;
  };
  const Step steps[] = {
      {"threshold T=4", {.threshold = 4}},
      {"+ d=2 choices", {.threshold = 4, .choices = 2}},
      {"+ k=2 steals", {.threshold = 4, .choices = 2, .steal_count = 2}},
      {"+ B=2 preemptive",
       {.threshold = 4, .choices = 2, .steal_count = 2, .begin_steal = 2}},
      {"+ r=1 retries",
       {.threshold = 4,
        .choices = 2,
        .steal_count = 2,
        .begin_steal = 2,
        .retry_rate = 1.0}},
  };

  util::Table table({"policy", "Est E[T]", "Sim(128)", "gain vs first"});
  double first = 0.0;
  for (const auto& step : steps) {
    core::ComposedWS model(lambda, step.policy);
    const double est = core::fixed_point_sojourn(model);
    if (first == 0.0) first = est;

    sim::SimConfig cfg;
    cfg.processors = 128;
    cfg.arrival_rate = lambda;
    cfg.policy = sim::StealPolicy::composed(
        step.policy.begin_steal, step.policy.threshold, step.policy.choices,
        step.policy.steal_count, step.policy.retry_rate);
    const double sim_w = bench::sim_mean_sojourn(cfg, f, pool);

    table.add_row({step.label, util::Table::fmt(est),
                   util::Table::fmt(sim_w),
                   util::Table::fmt(first / est, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nno-stealing reference: " << 1.0 / (1.0 - lambda) << "\n";
  return 0;
}
