// Reproduces Table 2: the constant-service-time model (T = 2), comparing
// simulations (constant service, n = 16..128) against the Erlang
// method-of-stages estimates with c = 10 and c = 20 stages. Paper:
//
//   lambda  Sim128  c=10   c=20
//   0.50    1.378   1.405  1.391
//   0.99    7.542   7.581  7.399
//
// Runs through exp::SweepRunner (sharded, cached, manifest/CSV
// artifacts; estimates chain warm along the λ grid).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header(
      "Table 2: constant service times vs Erlang-stage estimates (T=2)", f);

  exp::ExperimentSpec spec;
  spec.name = "table2_constant_service";
  spec.fidelity = f;
  spec.lambdas = {0.50, 0.70, 0.80, 0.90, 0.95, 0.99};
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    exp::GridEntry e;
    e.label = "sim" + std::to_string(n);
    e.config.processors = n;
    e.config.service = sim::ServiceDistribution::constant(1.0);
    e.config.policy = sim::StealPolicy::on_empty(2);
    e.estimate = false;
    spec.add(std::move(e));
  }
  for (const std::size_t c : {10u, 20u}) {
    exp::GridEntry e;
    e.label = "est_c" + std::to_string(c);
    e.model = "erlang";
    e.params = {{"c", static_cast<double>(c)}};
    e.simulate = false;
    spec.add(std::move(e));
  }

  const auto report = exp::SweepRunner().run(spec);

  util::Table table({"lambda", "Sim(16)", "Sim(32)", "Sim(64)", "Sim(128)",
                     "c=10", "c=20"});
  for (const double lambda : spec.lambdas) {
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    for (const std::size_t n : {16u, 32u, 64u, 128u}) {
      row.push_back(util::Table::fmt(
          report.sim("sim" + std::to_string(n), lambda)));
    }
    for (const std::size_t c : {10u, 20u}) {
      row.push_back(util::Table::fmt(
          report.estimate("est_c" + std::to_string(c), lambda)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper c=20 estimates: 1.391 / 1.727 / 2.039 / 2.700 / 3.625 "
               "/ 7.399; constant service beats exponential service\n"
            << report.summary() << "\n";
  return 0;
}
