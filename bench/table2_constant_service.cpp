// Reproduces Table 2: the constant-service-time model (T = 2), comparing
// simulations (constant service, n = 16..128) against the Erlang
// method-of-stages estimates with c = 10 and c = 20 stages. Paper:
//
//   lambda  Sim128  c=10   c=20
//   0.50    1.378   1.405  1.391
//   0.99    7.542   7.581  7.399
#include <iostream>

#include "bench_common.hpp"
#include "core/erlang_ws.hpp"
#include "core/fixed_point.hpp"

int main() {
  using namespace lsm;
  const auto f = bench::fidelity();
  bench::print_header(
      "Table 2: constant service times vs Erlang-stage estimates (T=2)", f);
  par::ThreadPool pool(util::worker_threads());

  util::Table table({"lambda", "Sim(16)", "Sim(32)", "Sim(64)", "Sim(128)",
                     "c=10", "c=20"});
  for (double lambda : {0.50, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    std::vector<std::string> row = {util::Table::fmt(lambda, 2)};
    for (std::size_t n : {16u, 32u, 64u, 128u}) {
      sim::SimConfig cfg;
      cfg.processors = n;
      cfg.arrival_rate = lambda;
      cfg.service = sim::ServiceDistribution::constant(1.0);
      cfg.policy = sim::StealPolicy::on_empty(2);
      row.push_back(util::Table::fmt(bench::sim_mean_sojourn(cfg, f, pool)));
    }
    for (std::size_t c : {10u, 20u}) {
      core::ErlangServiceWS model(lambda, c);
      row.push_back(
          util::Table::fmt(core::fixed_point_sojourn(model)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper c=20 estimates: 1.391 / 1.727 / 2.039 / 2.700 / 3.625 "
               "/ 7.399; constant service beats exponential service\n";
  return 0;
}
